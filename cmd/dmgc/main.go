// Command dmgc works with DMGC signatures (Section 3 of the paper): it
// parses and explains a signature, predicts its throughput with the
// Section 4 performance model, and prints the taxonomy of prior work.
//
//	dmgc classify D8M16G32C32
//	dmgc predict D8M8 -n 1048576 -threads 18
//	dmgc table1
//	dmgc simulate D8M8 -n 1048576 -threads 18
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"buckwild"
	"buckwild/internal/dmgc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dmgc: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "classify":
		classify(args)
	case "predict":
		predict(args)
	case "simulate":
		simulate(args)
	case "stat":
		stat(args)
	case "table1":
		for _, r := range dmgc.Table1() {
			fmt.Printf("%-34s %-10s %s\n", r.Paper, r.Signature, r.Note)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dmgc classify <signature>                  explain a signature
  dmgc predict <signature> [-n N -threads T] performance-model throughput
  dmgc simulate <signature> [-n N -threads T] simulated-machine throughput
  dmgc stat <signature> [-n N -threads T -eta E] statistical-efficiency model
  dmgc table1                                prior-work taxonomy`)
}

func classify(args []string) {
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	sig, err := dmgc.Parse(args[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature      %s\n", sig)
	fmt.Printf("dataset        %d bits%s\n", sig.DatasetBits(), floatNote(sig.D))
	if sig.Sparse() {
		fmt.Printf("index          %d bits (sparse problem)\n", sig.IndexBits())
	} else {
		fmt.Printf("index          (dense problem)\n")
	}
	fmt.Printf("model          %d bits%s\n", sig.ModelBits(), floatNote(sig.M))
	if sig.G.Present {
		fmt.Printf("gradients      %d bits%s\n", sig.G.Bits, floatNote(sig.G))
	} else {
		fmt.Printf("gradients      equivalent to full precision (G omitted)\n")
	}
	switch {
	case !sig.C.Present:
		fmt.Printf("communication  implicit via cache coherence (Hogwild!-style, asynchronous)\n")
	case sig.CSync:
		fmt.Printf("communication  explicit, %d bits, synchronous\n", sig.C.Bits)
	default:
		fmt.Printf("communication  explicit, %d bits, asynchronous\n", sig.C.Bits)
	}
	fmt.Printf("bytes/element  %.2f (dataset stream)\n", sig.BytesPerElement())
}

func floatNote(t dmgc.Term) string {
	if t.Present && t.Float {
		return " (floating point)"
	}
	if !t.Present {
		return " (term omitted: full precision)"
	}
	return " (fixed point)"
}

func predict(args []string) {
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	sigText := args[0]
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	n := fs.Int("n", 1<<20, "model size")
	threads := fs.Int("threads", 18, "thread count")
	if err := fs.Parse(args[1:]); err != nil {
		log.Fatal(err)
	}
	sig, err := dmgc.Parse(sigText)
	if err != nil {
		log.Fatal(err)
	}
	pm := dmgc.DefaultPerfModel()
	gnps, err := pm.Throughput(sig, *n, *threads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at n=%d, %d threads: %.3f GNPS (%s, p=%.3f)\n",
		sig, *n, *threads, gnps, pm.Regime(*n), pm.P(*n))
}

// stat applies the first-principles statistical model (the other half of
// the DMGC model: Section 3 notes a signature suffices to model statistical
// efficiency via the Taming-the-Wild analysis).
func stat(args []string) {
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	sigText := args[0]
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	n := fs.Int("n", 1024, "model size")
	threads := fs.Int("threads", 18, "thread count")
	eta := fs.Float64("eta", 0.01, "step size")
	mu := fs.Float64("mu", 0.1, "strong convexity")
	lip := fs.Float64("L", 1, "smoothness")
	m2 := fs.Float64("m2", 1, "gradient second moment")
	if err := fs.Parse(args[1:]); err != nil {
		log.Fatal(err)
	}
	sig, err := dmgc.Parse(sigText)
	if err != nil {
		log.Fatal(err)
	}
	prob := dmgc.StatProblem{N: *n, Mu: *mu, L: *lip, M2: *m2}
	pred, err := dmgc.PredictStatistics(sig, prob, *eta, *threads)
	if err != nil {
		log.Fatal(err)
	}
	maxStep, _ := dmgc.MaxStableStep(prob, *threads)
	fmt.Printf("%s, n=%d, eta=%g, %d threads:\n", sig, *n, *eta, *threads)
	fmt.Printf("  per-step contraction    %.6f (rate %.6f)\n", 1-pred.Rate, pred.Rate)
	fmt.Printf("  noise ball (E|w-w*|^2)  %.6g\n", pred.NoiseBall)
	fmt.Printf("    gradient variance     %.6g\n", pred.GradientTerm)
	fmt.Printf("    quantization          %.6g\n", pred.QuantizeTerm)
	fmt.Printf("    asynchrony            %.6g\n", pred.StalenessTerm)
	fmt.Printf("  steps to ball from r0^2=1: %.0f\n", pred.StepsTo(1))
	fmt.Printf("  max stable step at %d threads: %.4g\n", *threads, maxStep)
}

func simulate(args []string) {
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	sigText := args[0]
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	n := fs.Int("n", 1<<20, "model size")
	threads := fs.Int("threads", 18, "thread count")
	if err := fs.Parse(args[1:]); err != nil {
		log.Fatal(err)
	}
	r, err := buckwild.SimulateThroughputOpts(sigText, *n, *threads, buckwild.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at n=%d, %d threads on the simulated Xeon:\n", sigText, *n, *threads)
	fmt.Printf("  %.3f GNPS, bound by %s\n", r.GNPS, r.Bound)
	fmt.Printf("  compute %.0f cycles/step, memory %.0f cycles/step (%.0f coherence)\n",
		r.ComputeCyclesPerStep, r.MemCyclesPerStep, r.CoherenceCyclesPerStep)
}
