package main

import "testing"

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must be registered exactly
	// once, plus the extension experiments.
	want := []string{
		"table1", "table2", "table3",
		"fig2", "fig3",
		"fig4a", "fig4b", "fig4c",
		"fig5a", "fig5b", "fig5c",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f",
		"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f",
		"newinsn", "numa", "ablations", "faulttol", "healthsweep",
		"cluster", "servload",
	}
	seen := map[string]int{}
	for _, e := range experiments {
		seen[e.id]++
		if e.desc == "" || e.run == nil {
			t.Errorf("experiment %q incompletely registered", e.id)
		}
	}
	for _, id := range want {
		if seen[id] != 1 {
			t.Errorf("experiment %q registered %d times, want 1", id, seen[id])
		}
	}
	if len(experiments) != len(want) {
		t.Errorf("%d experiments registered, want %d", len(experiments), len(want))
	}
	if lookup("table1") == nil || lookup("nope") != nil {
		t.Error("lookup misbehaves")
	}
}

func TestQuickSmokeTables(t *testing.T) {
	// The table experiments are cheap enough to smoke in a unit test.
	for _, id := range []string{"table1", "table3"} {
		if err := lookup(id).run(true); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}
