package main

// This file is the experiments driver's side of the observability layer:
// -report collects per-experiment counters from both halves of the
// reproduction — simulated-machine sweeps (cache/coherence/access
// statistics via sweep.SimulateEach) and real trainings (engine RunStats
// via core's Observer) — and writes one JSON document at the end of the
// run. Without -report nothing is collected and the trainings run
// uninstrumented.

import (
	"flag"
	"runtime"
	"time"

	"buckwild/internal/machine"
	"buckwild/internal/obs"
	"buckwild/internal/trace"
)

var reportPath = flag.String("report", "", "write a JSON observability report (per-experiment sim and training counters) to this file")

// reportExperiment is one experiment's entry in the -report document.
type reportExperiment struct {
	ID           string  `json:"id"`
	WallSeconds  float64 `json:"wall_seconds"`
	HeadlineGNPS float64 `json:"headline_gnps,omitempty"`
	// SimPoints and SimSteps total the experiment's simulator work:
	// sweep points run and per-core steps measured.
	SimPoints int `json:"sim_points,omitempty"`
	SimSteps  int `json:"sim_steps,omitempty"`
	// CoherenceEvents and ObstinateRejects total the simulated cache
	// hierarchy's coherence traffic across the experiment's sweeps.
	// Omitted (with Access) for pure-training experiments that never run
	// the simulator, so their entries don't carry zero-valued sim blocks.
	CoherenceEvents  uint64 `json:"coherence_events,omitempty"`
	ObstinateRejects uint64 `json:"obstinate_rejects,omitempty"`
	// Access breaks the simulated accesses down by trace kind; nil when
	// the experiment ran no simulation.
	Access *trace.AccessStats `json:"access,omitempty"`
	// Train aggregates the engine counters of the experiment's real
	// trainings (step counts, model writes, staleness histogram and the
	// numerical-health block); absent for pure-simulation experiments.
	Train *obs.RunStats `json:"train,omitempty"`
	// StalenessP50 and StalenessP99 are quantiles of the aggregated
	// staleness histogram, precomputed so report consumers need no
	// histogram arithmetic.
	StalenessP50 float64 `json:"staleness_p50,omitempty"`
	StalenessP99 float64 `json:"staleness_p99,omitempty"`
	// Supervisor totals the retry/checkpoint counters of the experiment's
	// supervised runs; absent when no supervisor ran.
	Supervisor *obs.SupervisorStats `json:"supervisor,omitempty"`
	// Cluster totals the simulated-interconnect accounting of the
	// experiment's cluster runs (exact wire bytes, simulated seconds,
	// update staleness); absent when no cluster run happened.
	Cluster *obs.ClusterStats `json:"cluster,omitempty"`
	// Serve totals the serving-tier counters of the experiment's daemon
	// runs (requests, latency histogram, batch sizes, admission
	// rejections, promotions); absent when no serving happened.
	Serve *obs.ServeStats `json:"serve,omitempty"`
}

// runReport is the top-level -report document.
type runReport struct {
	Date         string             `json:"date"`
	GoVersion    string             `json:"go_version"`
	NumCPU       int                `json:"num_cpu"`
	Workers      int                `json:"workers"`
	Quick        bool               `json:"quick"`
	TotalSeconds float64            `json:"total_seconds"`
	Experiments  []reportExperiment `json:"experiments"`
}

// report is nil unless -report is set; currentRpt points at the running
// experiment's entry.
var (
	report     *runReport
	currentRpt *reportExperiment
)

// reportInit turns reporting on.
func reportInit(workers int, quick bool) {
	report = &runReport{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
		Quick:     quick,
	}
}

// reportStart opens the running experiment's entry.
func reportStart(id string) {
	if report == nil {
		return
	}
	report.Experiments = append(report.Experiments, reportExperiment{ID: id})
	currentRpt = &report.Experiments[len(report.Experiments)-1]
}

// reportFinish closes the entry with its timing and headline.
func reportFinish(wallSeconds, headlineGNPS float64) {
	if currentRpt == nil {
		return
	}
	currentRpt.WallSeconds = wallSeconds
	currentRpt.HeadlineGNPS = headlineGNPS
	if currentRpt.Train != nil {
		currentRpt.StalenessP50 = currentRpt.Train.Staleness.Quantile(0.5)
		currentRpt.StalenessP99 = currentRpt.Train.Staleness.Quantile(0.99)
	}
	currentRpt = nil
}

// reportSim folds one sweep point's machine statistics into the running
// entry. sweep.SimulateEach invokes it sequentially on the driver
// goroutine after the sweep completes, so no locking is needed.
func reportSim(_ int, r *machine.Result) {
	if currentRpt == nil || r == nil {
		return
	}
	currentRpt.SimPoints++
	currentRpt.SimSteps += r.MeasuredSteps
	currentRpt.CoherenceEvents += r.CoherenceEvents
	currentRpt.ObstinateRejects += r.ObstinateRejects
	if currentRpt.Access == nil {
		currentRpt.Access = &trace.AccessStats{}
	}
	currentRpt.Access.Merge(r.Access)
}

// trainObserver returns the Observer that training experiments should
// install: nil without -report (the zero-cost path), otherwise a
// default-sampling observer collecting counters, the staleness
// histogram and the numerical-health block.
func trainObserver() *obs.Observer {
	if report == nil {
		return nil
	}
	return &obs.Observer{NumHealth: true}
}

// reportTrain merges training RunStats (one per sweep point; nil entries
// are skipped) into the running entry. Call it after sweep.Map returns —
// not from inside worker closures.
func reportTrain(stats ...*obs.RunStats) {
	if currentRpt == nil {
		return
	}
	for _, s := range stats {
		if s == nil {
			continue
		}
		if currentRpt.Train == nil {
			currentRpt.Train = &obs.RunStats{}
		}
		currentRpt.Train.Merge(s)
	}
}

// reportCluster merges cluster-run accounting (one per sweep point; nil
// entries are skipped) into the running entry. Call it after sweep.Map
// returns — not from inside worker closures.
func reportCluster(stats ...*obs.ClusterStats) {
	if currentRpt == nil {
		return
	}
	for _, s := range stats {
		if s == nil {
			continue
		}
		if currentRpt.Cluster == nil {
			currentRpt.Cluster = &obs.ClusterStats{}
		}
		currentRpt.Cluster.Merge(s)
	}
}

// reportServe merges serving-tier snapshots (nil entries are skipped)
// into the running entry.
func reportServe(stats ...*obs.ServeStats) {
	if currentRpt == nil {
		return
	}
	for _, s := range stats {
		if s == nil {
			continue
		}
		if currentRpt.Serve == nil {
			currentRpt.Serve = &obs.ServeStats{}
		}
		currentRpt.Serve.Merge(s)
	}
}

// reportSupervisor folds a supervised run's counters into the running
// entry; ResumedEpoch and FinalThreads take the latest run's values.
func reportSupervisor(ss *obs.SupervisorStats) {
	if currentRpt == nil || ss == nil {
		return
	}
	if currentRpt.Supervisor == nil {
		currentRpt.Supervisor = &obs.SupervisorStats{}
	}
	s := currentRpt.Supervisor
	s.Attempts += ss.Attempts
	s.Retries += ss.Retries
	s.Checkpoints += ss.Checkpoints
	s.CheckpointBytes += ss.CheckpointBytes
	s.Resumes += ss.Resumes
	s.ResumedEpoch = ss.ResumedEpoch
	s.InjectedCrashes += ss.InjectedCrashes
	s.InjectedStalls += ss.InjectedStalls
	s.CorruptedCheckpoints += ss.CorruptedCheckpoints
	s.CheckpointFallbacks += ss.CheckpointFallbacks
	s.StallsDetected += ss.StallsDetected
	s.Degradations += ss.Degradations
	s.FinalThreads = ss.FinalThreads
}

// reportWrite finalizes and writes the document.
func reportWrite(totalSeconds float64) error {
	if report == nil {
		return nil
	}
	report.TotalSeconds = totalSeconds
	return obs.WriteJSON(*reportPath, report)
}
