package main

import (
	"fmt"
	"time"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/fixed"
	"buckwild/internal/fpga"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
	"buckwild/internal/nn"
	"buckwild/internal/rff"
	"buckwild/internal/simd"
	"buckwild/internal/sweep"
)

func init() {
	register("fig7a", "convolution layer throughput vs precision (AlexNet conv1 shape)", runFig7a)
	register("fig7b", "CNN (LeNet-style) test error vs bit width and rounding", runFig7b)
	register("fig7c", "FPGA two-stage vs three-stage design trade-off", runFig7c)
	register("fig7d", "kernel SVM (RFF) training loss per epoch vs precision", runFig7d)
	register("fig7e", "kernel SVM (RFF) test error and runtime vs precision", runFig7e)
	register("fig7f", "FPGA throughput and area vs precision, GNPS/watt", runFig7f)
}

func runFig7a(bool) error {
	cost := simd.Haswell()
	dims := nn.AlexNetConv1()
	fmt.Printf("layer: %dx%dx%d input, %d filters %dx%d stride %d (%d MACs/image)\n\n",
		dims.InW, dims.InH, dims.InC, dims.OutC, dims.K, dims.K, dims.Stride, dims.MACs())
	header("precision", "cycles/image", "images/s @2.5GHz", "speedup vs 32f", "variant")
	type cfg struct {
		name string
		d, m kernels.Prec
		v    kernels.Variant
	}
	cases := []cfg{
		{"D32fM32f", kernels.F32, kernels.F32, kernels.HandOpt},
		{"D32fM32f (generic)", kernels.F32, kernels.F32, kernels.Generic},
		{"D16M16", kernels.I16, kernels.I16, kernels.HandOpt},
		{"D16M16 (generic)", kernels.I16, kernels.I16, kernels.Generic},
		{"D8M8", kernels.I8, kernels.I8, kernels.HandOpt},
		{"D8M8 (generic)", kernels.I8, kernels.I8, kernels.Generic},
	}
	base, err := nn.ConvCycles(cost, dims, kernels.F32, kernels.F32, kernels.HandOpt)
	if err != nil {
		return err
	}
	for _, c := range cases {
		cy, err := nn.ConvCycles(cost, dims, c.d, c.m, c.v)
		if err != nil {
			return err
		}
		row(c.name, cy, 2.5e9/cy, base/cy, c.v.String())
	}
	fmt.Println("\nhand-optimized low precision gives near-linear conv speedups; generic code forfeits them (paper Fig 7a)")
	return nil
}

func runFig7b(quick bool) error {
	trainN, epochs := 2500, 8
	if quick {
		trainN, epochs = 600, 3
	}
	d, err := dataset.GenDigits(dataset.DigitsConfig{W: 12, H: 12, Classes: 10, Train: trainN, Seed: 77})
	if err != nil {
		return err
	}
	train, test := d.Split(0.8)
	header("bits (D=M)", "rounding", "test error")
	for _, bits := range []uint{32, 16, 8, 6, 4} {
		for _, r := range []fixed.Rounding{fixed.Unbiased, fixed.Biased} {
			if bits == 32 && r == fixed.Biased {
				continue
			}
			var q nn.QuantSpec
			if bits == 32 {
				q = nn.FullPrecision()
			} else {
				q, err = nn.NewQuantSpec(bits, bits, r, 3)
				if err != nil {
					return err
				}
			}
			net, err := nn.NewLeNet(nn.LeNetConfig{W: 12, H: 12, Classes: 10, Quant: q, Seed: 2})
			if err != nil {
				return err
			}
			res, err := net.Train(train, test, epochs, 0.03)
			if err != nil {
				return err
			}
			row(bits, r.String(), res.TestError)
		}
	}
	fmt.Println("\ntraining stays accurate below 8 bits with unbiased rounding (paper Fig 7b)")
	return nil
}

func runFig7c(bool) error {
	dev := fpga.StratixVGSD8()
	header("design", "lanes", "ALMs", "BRAM (Kb)", "GNPS")
	for _, pipe := range []fpga.Pipeline{fpga.TwoStage, fpga.ThreeStage} {
		r, err := fpga.Evaluate(dev, fpga.Params{
			DataBits: 8, ModelBits: 8, Lanes: 64, Pipeline: pipe,
			MiniBatch: 16, ModelSize: 65536, Unbiased: true,
		})
		if err != nil {
			return err
		}
		row(pipe.String(), 64, r.ALMs, r.BRAMKb, r.GNPS)
	}
	fmt.Println("\nthree-stage trades BRAM (redundant copy) for simpler logic; two-stage the reverse (paper Fig 7c)")
	return nil
}

// fig7dCases are the precision settings of the kernel SVM study.
func fig7dCases() []struct {
	name string
	d, m kernels.Prec
} {
	return []struct {
		name string
		d, m kernels.Prec
	}{
		{"D32fM32f", kernels.F32, kernels.F32},
		{"D16M16", kernels.I16, kernels.I16},
		{"D8M8", kernels.I8, kernels.I8},
	}
}

func rffRun(quick bool, d, m kernels.Prec, seed uint64) (*rff.Result, time.Duration, error) {
	trainN, feats, epochs := 1200, 512, 5
	if quick {
		trainN, feats, epochs = 400, 128, 3
	}
	dg, err := dataset.GenDigits(dataset.DigitsConfig{W: 12, H: 12, Classes: 10, Train: trainN, Seed: 78})
	if err != nil {
		return nil, 0, err
	}
	train, test := dg.Split(0.8)
	start := time.Now()
	_, res, err := rff.Train(rff.Config{
		Features: feats,
		Train: core.Config{
			Problem: core.SVM, D: d, M: m,
			Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
			Threads: 2, StepSize: 0.05, Epochs: epochs,
			Sharing: core.Racy, Seed: seed,
		},
		Seed: seed,
	}, train, test)
	return res, time.Since(start), err
}

func runFig7d(quick bool) error {
	// The RFF trainings use racy sharing, so their loss curves vary run
	// to run regardless of scheduling; each case trains its own model
	// and can run on its own worker.
	cases := fig7dCases()
	losses, err := sweep.Map(*workers, len(cases), func(i int) ([]float64, error) {
		res, _, err := rffRun(quick, cases[i].d, cases[i].m, 11)
		if err != nil {
			return nil, err
		}
		return res.TrainLoss, nil
	})
	if err != nil {
		return err
	}
	header("epoch", "D32fM32f", "D16M16", "D8M8")
	for e := range losses[0] {
		row(e, losses[0][e], losses[1][e], losses[2][e])
	}
	fmt.Println("\nall precisions track the full-precision loss curve (paper Fig 7d)")
	return nil
}

func runFig7e(quick bool) error {
	// Simulated runtimes on the modelled Xeon: the Go host cannot show
	// SIMD speedups (no intrinsics), so hardware efficiency comes from
	// the machine model, as everywhere else in the reproduction.
	// Plateau-regime single-thread ratio: the SVM feature vectors are
	// streamed like any dense dataset, so the cross-precision runtime
	// ratio is the Table 2 base-throughput ratio. Point 0 is the float
	// baseline; the rest follow fig7dCases order.
	simW := func(d, m kernels.Prec) machine.Workload {
		return machine.Workload{
			D: d, M: m, Variant: kernels.HandOpt,
			Quant: kernels.QShared, QuantPeriod: 8,
			ModelSize: 1 << 20, Threads: 1, Prefetch: true, Seed: 1,
		}
	}
	cases := fig7dCases()
	points := []machine.Workload{simW(kernels.F32, kernels.F32)}
	for _, c := range cases {
		points = append(points, simW(c.d, c.m))
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	base32 := rs[0].GNPS
	header("precision", "test error", "host time", "sim speedup vs 32f")
	// The trainings stay serial: the host-time column measures each
	// case's own wall clock, which a shared pool would distort.
	for i, c := range cases {
		res, dur, err := rffRun(quick, c.d, c.m, 12)
		if err != nil {
			return err
		}
		row(c.name, res.TestError, dur.Round(time.Millisecond).String(), rs[i+1].GNPS/base32)
	}
	fmt.Println("\n16-bit matches full precision; 8-bit within a percent; paper runtimes 3.3x/5.9x (paper Fig 7e)")
	return nil
}

func runFig7f(bool) error {
	dev := fpga.StratixVGSD8()
	const n = 8192
	header("precision", "GNPS", "ALMs", "BRAM (Kb)", "GNPS/watt", "best design")
	var base float64
	for _, c := range []struct {
		name   string
		d, m   uint
		unbias bool
	}{
		{"D32M32", 32, 32, false},
		{"D16M16", 16, 16, true},
		{"D8M16", 8, 16, true},
		{"D8M8", 8, 8, true},
		{"D4M4", 4, 4, true},
	} {
		r, err := fpga.Search(dev, c.d, c.m, n, c.unbias)
		if err != nil {
			return err
		}
		if base == 0 {
			base = r.GNPS
		}
		row(c.name, r.GNPS, r.ALMs, r.BRAMKb, r.GNPSPerWatt,
			fmt.Sprintf("%s x%d", r.Params.Pipeline, r.Params.Lanes))
	}
	fmt.Printf("\npaper: up to 2.5x throughput as precision drops; 0.339 GNPS/W on the FPGA vs 0.143 on the Xeon\n")
	return nil
}
