package main

import (
	"fmt"

	"buckwild/internal/dmgc"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
)

func init() {
	register("table1", "DMGC signatures of previous algorithms", runTable1)
	register("table2", "base sequential throughputs (GNPS) per signature, dense and sparse", runTable2)
	register("table3", "summary of optimizations", runTable3)
}

func runTable1(bool) error {
	header("paper", "signature", "classification note")
	for _, r := range dmgc.Table1() {
		fmt.Printf("%-34s%-12s%s\n", r.Paper, r.Signature, r.Note)
	}
	return nil
}

// sigWorkload converts a dense Table 2 signature into a machine workload.
func sigWorkload(sig dmgc.Signature, n, threads int, sparse bool) (machine.Workload, error) {
	d, err := precFromBits(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return machine.Workload{}, err
	}
	m, err := precFromBits(sig.ModelBits(), sig.M.Float || !sig.M.Present)
	if err != nil {
		return machine.Workload{}, err
	}
	w := machine.Workload{
		Sparse:      sparse,
		D:           d,
		M:           m,
		IdxBits:     sig.IndexBits(),
		Variant:     kernels.HandOpt,
		Quant:       kernels.QShared,
		QuantPeriod: 8,
		ModelSize:   n,
		Density:     0.03,
		Threads:     threads,
		Prefetch:    true,
		Seed:        1,
	}
	if d == kernels.I4 || m == kernels.I4 {
		w.Variant = kernels.NewInsn
	}
	return w, nil
}

func precFromBits(bits uint, isFloat bool) (kernels.Prec, error) {
	if isFloat || bits == 32 {
		return kernels.F32, nil
	}
	switch bits {
	case 4:
		return kernels.I4, nil
	case 8:
		return kernels.I8, nil
	case 16:
		return kernels.I16, nil
	}
	return 0, fmt.Errorf("unsupported precision %d", bits)
}

func runTable2(quick bool) error {
	n := 1 << 20
	if quick {
		n = 1 << 16
	}
	denseSigs := dmgc.Table2Signatures(false)
	sparseSigs := dmgc.Table2Signatures(true)
	var points []machine.Workload
	for i := range denseSigs {
		wd, err := sigWorkload(denseSigs[i], n, 1, false)
		if err != nil {
			return err
		}
		ws, err := sigWorkload(sparseSigs[i], n, 1, true)
		if err != nil {
			return err
		}
		points = append(points, wd, ws)
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("signature", "dense T1", "paper", "sparse T1", "paper")
	for i := range denseSigs {
		pd, _ := dmgc.Table2Base(denseSigs[i])
		ps, _ := dmgc.Table2Base(sparseSigs[i])
		row(denseSigs[i].String(), rs[2*i].GNPS, pd, rs[2*i+1].GNPS, ps)
	}
	fmt.Println("\n(dense signatures shown; sparse column uses the matching D..i..M.. spelling)")
	return nil
}

func runTable3(bool) error {
	header("optimization", "beneficial when?", "stat. eff. loss")
	for _, o := range dmgc.Table3() {
		fmt.Printf("%-20s%-26s%s\n", o.Name, o.Beneficial, o.StatLoss)
	}
	return nil
}
