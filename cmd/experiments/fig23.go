package main

import (
	"fmt"

	"buckwild/internal/dmgc"
	"buckwild/internal/machine"
)

func init() {
	register("fig2", "throughput bounds as model size changes (D8M8, 18 threads)", runFig2)
	register("fig3", "measured vs model-predicted throughput across threads and precisions", runFig3)
}

func sizes(quick bool) []int {
	if quick {
		return []int{1 << 8, 1 << 12, 1 << 16, 1 << 20}
	}
	out := []int{}
	for p := 8; p <= 24; p += 2 {
		out = append(out, 1<<uint(p))
	}
	return out
}

// fig2Points builds the (18 threads, 1 thread) pair per model size; the
// fitting pass of fig3 sweeps the identical grid.
func fig2Points(ns []int) ([]machine.Workload, error) {
	var points []machine.Workload
	for _, n := range ns {
		w, err := sigWorkload(dmgc.MustParse("D8M8"), n, 18, false)
		if err != nil {
			return nil, err
		}
		points = append(points, w)
		w.Threads = 1
		points = append(points, w)
	}
	return points, nil
}

func runFig2(quick bool) error {
	mc := machine.Xeon()
	ns := sizes(quick)
	points, err := fig2Points(ns)
	if err != nil {
		return err
	}
	rs, err := simulateAll(mc, points)
	if err != nil {
		return err
	}
	header("model size", "GNPS (18t)", "GNPS (1t)", "bound", "regime (model)")
	pm := dmgc.DefaultPerfModel()
	for i, n := range ns {
		r18, r1 := rs[2*i], rs[2*i+1]
		row(fmt.Sprintf("2^%d", log2(n)), r18.GNPS, r1.GNPS, r18.Bound, pm.Regime(n).String())
	}
	fmt.Println("\ncommunication-bound below the knee, bandwidth-bound plateau above (paper Fig 2)")
	return nil
}

func runFig3(quick bool) error {
	mc := machine.Xeon()
	sigNames := []string{"D8M8", "D16M16", "D32fM32f"}
	sparseNames := []string{"D8i8M8", "D16i16M16", "D32fi32M32f"}
	threads := []int{1, 18}
	ns := sizes(quick)

	// Fit the performance model's p(n) to the simulated machine at 18
	// threads, exactly as the paper fits equation (3) to its Xeon.
	fitPoints, err := fig2Points(ns)
	if err != nil {
		return err
	}
	fitRs, err := simulateAll(mc, fitPoints)
	if err != nil {
		return err
	}
	var fitSizes []int
	var fitSpeedups []float64
	for i, n := range ns {
		fitSizes = append(fitSizes, n)
		fitSpeedups = append(fitSpeedups, fitRs[2*i].GNPS/fitRs[2*i+1].GNPS)
	}
	pb, kappa, err := dmgc.FitP(fitSizes, fitSpeedups, 18)
	if err != nil {
		return err
	}
	fmt.Printf("fitted p(n) = %.3f * n/(n + %.0f)\n\n", pb, kappa)

	run := func(names []string, sparse bool) error {
		kind := "dense"
		if sparse {
			kind = "sparse"
		}
		// Per signature: the single-thread base point at the largest
		// size, then the full (threads x sizes) grid, all fanned out
		// in one sweep.
		perSig := 1 + len(threads)*len(ns)
		var points []machine.Workload
		for _, name := range names {
			sig := dmgc.MustParse(name)
			wBase, err := sigWorkload(sig, ns[len(ns)-1], 1, sparse)
			if err != nil {
				return err
			}
			points = append(points, wBase)
			for _, t := range threads {
				for _, n := range ns {
					w, err := sigWorkload(sig, n, t, sparse)
					if err != nil {
						return err
					}
					points = append(points, w)
				}
			}
		}
		rs, err := simulateAll(mc, points)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s --\n", kind)
		header("signature", "threads", "model size", "simulated", "predicted", "rel.err")
		var pred, meas []float64
		for si, name := range names {
			sig := dmgc.MustParse(name)
			// Base throughput from the simulated machine at the
			// largest size.
			rBase := rs[si*perSig]
			pm := &dmgc.PerfModel{PBandwidth: pb, Kappa: kappa, RegimeKnee: 256 << 10,
				T1: func(dmgc.Signature) (float64, error) { return rBase.GNPS, nil }}
			i := si*perSig + 1
			for _, t := range threads {
				for _, n := range ns {
					r := rs[i]
					i++
					p, err := pm.Throughput(sig, n, t)
					if err != nil {
						return err
					}
					rel := 0.0
					if r.GNPS > 0 {
						rel = (p - r.GNPS) / r.GNPS
					}
					pred = append(pred, p)
					meas = append(meas, r.GNPS)
					row(name, t, fmt.Sprintf("2^%d", log2(n)), r.GNPS, p, fmt.Sprintf("%+.0f%%", rel*100))
				}
			}
		}
		frac, err := dmgc.Validate(pred, meas, 0.5)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %.0f%% of configurations within 50%% (paper reports 90%%)\n\n", kind, frac*100)
		return nil
	}
	if err := run(sigNames, false); err != nil {
		return err
	}
	return run(sparseNames, true)
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
