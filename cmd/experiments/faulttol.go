package main

import (
	"fmt"
	"os"
	"time"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
	"buckwild/internal/run"
)

func init() {
	register("faulttol", "supervised training under injected crashes: checkpoint, resume, retry", runFaultTol)
}

// runFaultTol exercises the fault-tolerance layer end to end: a dense
// logistic training supervised with per-epoch checkpointing and a crash
// injected mid-epoch after the first checkpoint exists, so the retry
// resumes from disk instead of restarting from scratch. The loss
// trajectory is stitched across the restart, so it matches an
// uninterrupted run of the same seed — which is what the table checks.
func runFaultTol(quick bool) error {
	m := 3000
	epochs := 8
	if quick {
		m, epochs = 1000, 4
	}
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: m, P: kernels.I8, Seed: 55})
	if err != nil {
		return err
	}
	cfg := core.Config{
		Problem: core.Logistic, D: kernels.I8, M: kernels.I8,
		Variant: kernels.HandOpt, Quant: kernels.QXorshift,
		Threads: 1, StepSize: 0.02, Epochs: epochs,
		Sharing: core.Sequential, Seed: 9,
	}

	// Baseline: the same training, unsupervised and fault-free.
	base, err := core.TrainDense(cfg, ds)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "faulttol-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// One model update per example, so step m+m/2 is mid-epoch 1 — after
	// epoch 0's checkpoint was written, forcing a real resume.
	plan, err := run.ParsePlan(fmt.Sprintf("crash@step=%d", m+m/2))
	if err != nil {
		return err
	}
	rep, err := run.TrainDense(runCtx, run.Config{
		Dir: dir, Every: 1, Keep: 2,
		MaxRetries: 3, Backoff: time.Millisecond, BackoffCap: 10 * time.Millisecond,
		Faults:       plan,
		CollectStats: report != nil,
		// The supervisor doesn't read the context tracer itself (its
		// callers pass one explicitly), so thread -trace's through.
		Tracer: obs.TracerFrom(runCtx),
	}, cfg, ds)
	if err != nil {
		return err
	}
	reportSupervisor(&rep.Stats)
	reportTrain(rep.Result.Stats)

	header("", "attempts", "resumes", "ckpts", "final loss")
	row("fault-free", 1, 0, 0, base.TrainLoss[epochs])
	row("crash+resume", rep.Stats.Attempts, rep.Stats.Resumes, rep.Stats.Checkpoints,
		rep.Result.TrainLoss[epochs])
	fmt.Printf("\nresumed from epoch %d after %d injected crash(es); trajectories match from the resume point on\n",
		rep.Stats.ResumedEpoch, rep.Stats.InjectedCrashes)
	return nil
}
