// Command experiments regenerates every table and figure of the paper's
// evaluation on the reproduction's simulated machine and training engine.
//
// Usage:
//
//	experiments [-quick] <id> [<id> ...]
//	experiments all
//
// where <id> is one of: table1 table2 table3 fig2 fig3 fig4a fig4b fig4c
// fig5a fig5b fig5c fig6a fig6b fig6c fig6d fig6e fig6f fig7a fig7b fig7c
// fig7d fig7e fig7f newinsn.
//
// -quick shrinks sweep sizes for smoke runs. Output is plain text: one
// labelled series or table per experiment, in the same shape as the
// paper's figure/table, so results can be compared row by row (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"
)

// experiment is one regenerable table or figure.
type experiment struct {
	id   string
	desc string
	run  func(quick bool) error
}

var experiments []experiment

func register(id, desc string, run func(quick bool) error) {
	experiments = append(experiments, experiment{id, desc, run})
}

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	sort.SliceStable(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = nil
		for _, e := range experiments {
			ids = append(ids, e.id)
		}
	}
	for _, id := range ids {
		e := lookup(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", id)
			usage()
			os.Exit(2)
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.desc)
		start := time.Now()
		if err := e.run(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

func lookup(id string) *experiment {
	for i := range experiments {
		if experiments[i].id == id {
			return &experiments[i]
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-quick] <id> [<id> ...] | all")
	fmt.Fprintln(os.Stderr, "experiments:")
	sort.SliceStable(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.id, e.desc)
	}
}

// header prints an aligned column header.
func header(cols ...string) {
	for _, c := range cols {
		fmt.Printf("%-14s", c)
	}
	fmt.Println()
}

// row prints aligned cells.
func row(cells ...interface{}) {
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			fmt.Printf("%-14.4g", v)
		case string:
			fmt.Printf("%-14s", v)
		default:
			fmt.Printf("%-14v", v)
		}
	}
	fmt.Println()
}
