// Command experiments regenerates every table and figure of the paper's
// evaluation on the reproduction's simulated machine and training engine.
//
// Usage:
//
//	experiments [-quick] [-workers n] [-json path] [-report path] [-trace path] [-cpuprofile path] <id> [<id> ...]
//	experiments all
//
// where <id> is one of: table1 table2 table3 fig2 fig3 fig4a fig4b fig4c
// fig5a fig5b fig5c fig6a fig6b fig6c fig6d fig6e fig6f fig7a fig7b fig7c
// fig7d fig7e fig7f newinsn numa ablations faulttol healthsweep.
//
// -quick shrinks sweep sizes for smoke runs. -workers bounds the sweep
// worker pool (0 = all CPUs). -json writes per-experiment wall times and
// headline GNPS to a file for trajectory tracking; -report writes a
// JSON observability report with per-experiment simulator statistics
// (steps, coherence events, access latencies) and training counters
// (model writes, staleness histogram); -trace writes a Chrome
// trace_event JSON timeline of the run (one span per experiment, per
// sweep task, per simulated-machine phase, and per training epoch —
// load it at https://ui.perfetto.dev or summarize it with
// `buckwild trace-summary`); -cpuprofile writes a pprof CPU
// profile of the whole run. Output is plain text: one labelled
// series or table per experiment, in the same shape as the paper's
// figure/table, so results can be compared row by row (see EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"
	"time"

	"buckwild/internal/machine"
	"buckwild/internal/obs"
	"buckwild/internal/sweep"
)

// experiment is one regenerable table or figure.
type experiment struct {
	id   string
	desc string
	run  func(quick bool) error
}

var experiments []experiment

func register(id, desc string, run func(quick bool) error) {
	experiments = append(experiments, experiment{id, desc, run})
}

// workers is the sweep pool size shared by every experiment (0 = all CPUs).
var workers = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")

// benchRecord is one experiment's entry in the -json trajectory file.
type benchRecord struct {
	ID string `json:"id"`
	// WallSeconds is the experiment's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// HeadlineGNPS is the best simulated throughput the experiment
	// produced, when it runs the machine simulator at all; it tracks
	// simulator-output drift across PRs alongside the timing.
	HeadlineGNPS float64 `json:"headline_gnps,omitempty"`
}

// benchFile is the top-level -json document.
type benchFile struct {
	Date         string        `json:"date"`
	GoVersion    string        `json:"go_version"`
	NumCPU       int           `json:"num_cpu"`
	Workers      int           `json:"workers"`
	Quick        bool          `json:"quick"`
	TotalSeconds float64       `json:"total_seconds"`
	Experiments  []benchRecord `json:"experiments"`
}

// current points at the running experiment's bench record so simulateAll
// can fold headline GNPS numbers into it.
var current *benchRecord

// recordGNPS folds simulated throughputs into the running experiment's
// headline (keeping the maximum).
func recordGNPS(rs []*machine.Result) {
	if current == nil {
		return
	}
	for _, r := range rs {
		if r != nil && r.GNPS > current.HeadlineGNPS {
			current.HeadlineGNPS = r.GNPS
		}
	}
}

// runCtx bounds every sweep: it is cancelled by SIGINT/SIGTERM, so ^C
// stops an hours-long "all" run at the next simulation round instead of
// requiring a kill.
var runCtx = context.Background()

// simulateAll fans a slice of workload points over the sweep pool and
// returns results in input order. Every experiment sweep goes through
// here, so each also contributes its headline GNPS to the -json record
// and its per-point machine statistics to the -report document, and
// each is interruptible through runCtx.
func simulateAll(mc machine.Config, points []machine.Workload) ([]*machine.Result, error) {
	rs, err := sweep.SimulateEachCtx(runCtx, mc, points, *workers, reportSim)
	if err != nil {
		return nil, err
	}
	recordGNPS(rs)
	return rs, nil
}

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	jsonPath := flag.String("json", "", "write per-experiment wall time + headline GNPS to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this file")
	traceCap := flag.Int("trace-capacity", 4*obs.DefaultTraceCapacity, "trace ring capacity in spans (oldest dropped beyond it)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The tracer rides runCtx: sweep workers and the machine simulator
	// pick it up from the context, and training experiments inherit it
	// through core's context fallback, so no experiment needs changing to
	// be traced.
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(*traceCap)
		ctx = obs.ContextWithTracer(ctx, tracer)
	}
	runCtx = ctx
	// Validate output writability up front: a bad path should fail before
	// the sweeps run, not after minutes of work. O_CREATE without O_TRUNC
	// leaves any existing file intact until the run completes and
	// rewrites it.
	for name, path := range map[string]string{"json": *jsonPath, "report": *reportPath, "trace": *tracePath} {
		if path == "" {
			continue
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		f.Close()
	}
	if *reportPath != "" {
		reportInit(*workers, *quick)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	sort.SliceStable(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = nil
		for _, e := range experiments {
			ids = append(ids, e.id)
		}
	}
	bench := benchFile{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   *workers,
		Quick:     *quick,
	}
	total := time.Now()
	for _, id := range ids {
		e := lookup(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", id)
			usage()
			os.Exit(2)
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.desc)
		bench.Experiments = append(bench.Experiments, benchRecord{ID: e.id})
		current = &bench.Experiments[len(bench.Experiments)-1]
		reportStart(e.id)
		expSpan := tracer.Begin("experiment", e.id, 0)
		start := time.Now()
		if err := e.run(*quick); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "%s interrupted\n", e.id)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		expSpan.End()
		current.WallSeconds = elapsed.Seconds()
		reportFinish(elapsed.Seconds(), current.HeadlineGNPS)
		current = nil
		fmt.Printf("---- %s done in %v ----\n\n", e.id, elapsed.Round(time.Millisecond))
	}
	bench.TotalSeconds = time.Since(total).Seconds()
	if *jsonPath != "" {
		if err := writeBench(*jsonPath, bench); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
	if err := reportWrite(time.Since(total).Seconds()); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := tracer.WriteTraceFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d spans -> %s\n", tracer.SpanCount(), *tracePath)
	}
}

func writeBench(path string, bench benchFile) error {
	buf, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func lookup(id string) *experiment {
	for i := range experiments {
		if experiments[i].id == id {
			return &experiments[i]
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-quick] [-workers n] [-json path] [-report path] [-trace path] [-cpuprofile path] <id> [<id> ...] | all")
	fmt.Fprintln(os.Stderr, "experiments:")
	sort.SliceStable(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.id, e.desc)
	}
}

// header prints an aligned column header.
func header(cols ...string) {
	for _, c := range cols {
		fmt.Printf("%-14s", c)
	}
	fmt.Println()
}

// row prints aligned cells.
func row(cells ...interface{}) {
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			fmt.Printf("%-14.4g", v)
		case string:
			fmt.Printf("%-14s", v)
		default:
			fmt.Printf("%-14v", v)
		}
	}
	fmt.Println()
}
