package main

import (
	"fmt"

	"buckwild/internal/dmgc"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
	"buckwild/internal/simd"
)

func init() {
	register("numa", "extension: NUMA socket-spreading trade-off (beyond the paper)", runNUMA)
	register("ablations", "extension: design-choice ablations (index precision, locking, PRNG sharing period)", runAblations)
}

func runNUMA(quick bool) error {
	ns := []int{1 << 9, 1 << 12, 1 << 16, 1 << 20, 1 << 21}
	if quick {
		ns = []int{1 << 9, 1 << 20}
	}
	// 24 threads: enough that socket bandwidth, not the per-core
	// streaming limit, binds for large models.
	var points []machine.Workload
	for _, n := range ns {
		w, err := sigWorkload(dmgc.MustParse("D8M8"), n, 24, false)
		if err != nil {
			return err
		}
		points = append(points, w)
		w.Sockets = 2
		points = append(points, w)
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("model size", "1 socket", "2 sockets", "2s/1s")
	for i, n := range ns {
		r1, r2 := rs[2*i], rs[2*i+1]
		row(fmt.Sprintf("2^%d", log2(n)), r1.GNPS, r2.GNPS, r2.GNPS/r1.GNPS)
	}
	fmt.Println("\nspreading across sockets doubles bandwidth for large models but makes")
	fmt.Println("small-model ping-pong cross the QPI — the DimmWitted-style trade-off the")
	fmt.Println("paper cites for NUMA machines (Zhang and Re)")
	return nil
}

func runAblations(quick bool) error {
	n := 1 << 18
	if quick {
		n = 1 << 14
	}

	idxNames := []string{"D8i8M8", "D8i16M8", "D8i32M8"}
	var points []machine.Workload
	for _, name := range idxNames {
		w, err := sigWorkload(dmgc.MustParse(name), n, 1, true)
		if err != nil {
			return err
		}
		points = append(points, w)
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	fmt.Println("-- sparse index precision (Section 3) --")
	header("signature", "GNPS (1t)")
	for i, name := range idxNames {
		row(name, rs[i].GNPS)
	}

	fmt.Println("\n-- randomness sharing period (Section 5.2, compute cycles per element) --")
	cost := simd.Haswell()
	header("period", "axpy cycles/elem", "vs biased")
	qb := kernels.MustQuantizer(kernels.I8, kernels.QBiased, 0, 1)
	kb := kernels.MustDense(kernels.I8, kernels.I8, kernels.HandOpt, qb)
	base := kb.AxpyStream(n).Cycles(cost) / float64(n)
	row("biased", base, 1.0)
	for _, period := range []int{1, 2, 8, 32} {
		q := kernels.MustQuantizer(kernels.I8, kernels.QShared, period, 1)
		k := kernels.MustDense(kernels.I8, kernels.I8, kernels.HandOpt, q)
		c := k.AxpyStream(n).Cycles(cost) / float64(n)
		row(period, c, c/base)
	}
	fmt.Println("\nlarger sharing periods amortize the PRNG; period 8 (one vector per")
	fmt.Println("AXPY refill) already recovers nearly all of the biased-rounding speed")
	return nil
}
