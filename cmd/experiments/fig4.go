package main

import (
	"fmt"

	"buckwild/internal/dmgc"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
	"buckwild/internal/metrics"
)

func init() {
	register("fig4a", "hand-optimized SIMD vs compiler-generic throughput (dense)", runFig4a)
	register("fig4b", "sparse small models: hand-optimization can hurt", runFig4b)
	register("fig4c", "average hand-optimization speedup per signature", runFig4c)
}

// variantPoints builds the (generic, hand-optimized) workload pair of a
// signature; every fig4 sweep is a flat list of such pairs.
func variantPoints(sig dmgc.Signature, n, threads int, sparse bool) ([]machine.Workload, error) {
	w, err := sigWorkload(sig, n, threads, sparse)
	if err != nil {
		return nil, err
	}
	w.Variant = kernels.Generic
	g := w
	w.Variant = kernels.HandOpt
	return []machine.Workload{g, w}, nil
}

func fig4Signatures() []string {
	return []string{"D8M8", "D8M16", "D16M8", "D16M16", "D8M32f", "D16M32f", "D32fM8", "D32fM16", "D32fM32f"}
}

func runFig4a(quick bool) error {
	n := 1 << 20
	if quick {
		n = 1 << 16
	}
	var points []machine.Workload
	for _, name := range fig4Signatures() {
		pair, err := variantPoints(dmgc.MustParse(name), n, 1, false)
		if err != nil {
			return err
		}
		points = append(points, pair...)
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("signature", "generic", "hand-opt", "speedup")
	for i, name := range fig4Signatures() {
		g, h := rs[2*i].GNPS, rs[2*i+1].GNPS
		row(name, g, h, h/g)
	}
	fmt.Println("\nthe low-precision signatures gain the most; float gains little (paper Fig 4a, up to 11x)")
	return nil
}

func runFig4b(quick bool) error {
	ns := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14}
	if quick {
		ns = ns[:2]
	}
	var points []machine.Workload
	for _, n := range ns {
		// Single thread isolates the kernel effect: at high thread
		// counts both variants hit the same coherence floor.
		pair, err := variantPoints(dmgc.MustParse("D8i8M8"), n, 1, true)
		if err != nil {
			return err
		}
		points = append(points, pair...)
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("model size", "generic", "hand-opt", "handopt/generic")
	for i, n := range ns {
		g, h := rs[2*i].GNPS, rs[2*i+1].GNPS
		row(fmt.Sprintf("2^%d", log2(n)), g, h, h/g)
	}
	fmt.Println("\nratios near or below 1 show vectorized gathers losing for small sparse models (paper Fig 4b)")
	return nil
}

func runFig4c(quick bool) error {
	ns := []int{1 << 12, 1 << 16, 1 << 20}
	threads := []int{1, 18}
	if quick {
		ns = []int{1 << 12, 1 << 16}
		threads = []int{1}
	}
	// Per signature and (n, t) cell: a dense variant pair then a sparse
	// one, with the sparse spelling adding the index term at the dataset
	// width.
	var points []machine.Workload
	for _, name := range fig4Signatures() {
		sig := dmgc.MustParse(name)
		for _, n := range ns {
			for _, t := range threads {
				pair, err := variantPoints(sig, n, t, false)
				if err != nil {
					return err
				}
				points = append(points, pair...)
				sSig := sig
				sSig.Idx = dmgc.FixedTerm(sig.DatasetBits())
				pair, err = variantPoints(sSig, n, t, true)
				if err != nil {
					return err
				}
				points = append(points, pair...)
			}
		}
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("signature", "dense speedup", "sparse speedup")
	i := 0
	for _, name := range fig4Signatures() {
		var dense, sparse []float64
		for range ns {
			for range threads {
				dense = append(dense, rs[i+1].GNPS/rs[i].GNPS)
				sparse = append(sparse, rs[i+3].GNPS/rs[i+2].GNPS)
				i += 4
			}
		}
		dm, err := metrics.GeoMean(dense)
		if err != nil {
			return err
		}
		sm, err := metrics.GeoMean(sparse)
		if err != nil {
			return err
		}
		row(name, dm, sm)
	}
	fmt.Println("\n(geometric mean across model sizes and thread counts, as in paper Fig 4c)")
	return nil
}
