package main

import (
	"fmt"

	"buckwild/internal/dmgc"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
	"buckwild/internal/metrics"
)

func init() {
	register("fig4a", "hand-optimized SIMD vs compiler-generic throughput (dense)", runFig4a)
	register("fig4b", "sparse small models: hand-optimization can hurt", runFig4b)
	register("fig4c", "average hand-optimization speedup per signature", runFig4c)
}

// variantGNPS simulates a signature at both kernel variants.
func variantGNPS(sig dmgc.Signature, n, threads int, sparse bool) (generic, handopt float64, err error) {
	mc := machine.Xeon()
	w, err := sigWorkload(sig, n, threads, sparse)
	if err != nil {
		return 0, 0, err
	}
	w.Variant = kernels.Generic
	rg, err := machine.Simulate(mc, w)
	if err != nil {
		return 0, 0, err
	}
	w.Variant = kernels.HandOpt
	rh, err := machine.Simulate(mc, w)
	if err != nil {
		return 0, 0, err
	}
	return rg.GNPS, rh.GNPS, nil
}

func fig4Signatures() []string {
	return []string{"D8M8", "D8M16", "D16M8", "D16M16", "D8M32f", "D16M32f", "D32fM8", "D32fM16", "D32fM32f"}
}

func runFig4a(quick bool) error {
	n := 1 << 20
	if quick {
		n = 1 << 16
	}
	header("signature", "generic", "hand-opt", "speedup")
	for _, name := range fig4Signatures() {
		g, h, err := variantGNPS(dmgc.MustParse(name), n, 1, false)
		if err != nil {
			return err
		}
		row(name, g, h, h/g)
	}
	fmt.Println("\nthe low-precision signatures gain the most; float gains little (paper Fig 4a, up to 11x)")
	return nil
}

func runFig4b(quick bool) error {
	ns := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14}
	if quick {
		ns = ns[:2]
	}
	header("model size", "generic", "hand-opt", "handopt/generic")
	for _, n := range ns {
		// Single thread isolates the kernel effect: at high thread
		// counts both variants hit the same coherence floor.
		g, h, err := variantGNPS(dmgc.MustParse("D8i8M8"), n, 1, true)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("2^%d", log2(n)), g, h, h/g)
	}
	fmt.Println("\nratios near or below 1 show vectorized gathers losing for small sparse models (paper Fig 4b)")
	return nil
}

func runFig4c(quick bool) error {
	ns := []int{1 << 12, 1 << 16, 1 << 20}
	threads := []int{1, 18}
	if quick {
		ns = []int{1 << 12, 1 << 16}
		threads = []int{1}
	}
	header("signature", "dense speedup", "sparse speedup")
	for _, name := range fig4Signatures() {
		sig := dmgc.MustParse(name)
		var dense, sparse []float64
		for _, n := range ns {
			for _, t := range threads {
				g, h, err := variantGNPS(sig, n, t, false)
				if err != nil {
					return err
				}
				dense = append(dense, h/g)
				// The sparse spelling adds the index term at the
				// dataset width.
				sSig := sig
				sSig.Idx = dmgc.FixedTerm(sig.DatasetBits())
				g, h, err = variantGNPS(sSig, n, t, true)
				if err != nil {
					return err
				}
				sparse = append(sparse, h/g)
			}
		}
		dm, err := metrics.GeoMean(dense)
		if err != nil {
			return err
		}
		sm, err := metrics.GeoMean(sparse)
		if err != nil {
			return err
		}
		row(name, dm, sm)
	}
	fmt.Println("\n(geometric mean across model sizes and thread counts, as in paper Fig 4c)")
	return nil
}
