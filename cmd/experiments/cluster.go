package main

// cluster extends the paper's communication-precision argument (the
// DMGC C term) across a simulated multi-node interconnect: the same training problem swept
// over node count × gradient wire precision × protocol (asynchronous
// parameter server vs double-buffered pipelined all-reduce), reporting
// simulated throughput, exact wire bytes and final loss. Low-precision
// wires buy bandwidth almost for free statistically, while the
// protocols trade staleness against communication overlap.

import (
	"fmt"

	"buckwild/internal/cluster"
	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
	"buckwild/internal/sweep"
)

func init() {
	register("cluster", "simulated multi-node training: parameter server vs pipelined all-reduce across wire precisions", runCluster)
}

type clusterPoint struct {
	nodes    int
	wireBits uint
	proto    cluster.Protocol
}

func runCluster(quick bool) error {
	m, epochs := 4096, 4
	nodeCounts := []int{2, 4, 8}
	wires := []uint{4, 8, 32}
	if quick {
		m, epochs = 1024, 2
		nodeCounts = []int{2, 4}
		wires = []uint{8, 32}
	}
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: m, P: kernels.F32, Seed: 77})
	if err != nil {
		return err
	}
	var points []clusterPoint
	for _, proto := range []cluster.Protocol{cluster.ParamServer, cluster.AllReduce} {
		for _, nodes := range nodeCounts {
			for _, bits := range wires {
				points = append(points, clusterPoint{nodes, bits, proto})
			}
		}
	}
	// With -trace, one representative point per protocol (the largest
	// node count at the 8-bit wire) records per-node timeline tracks into
	// the run's tracer; distinct track-id bases keep the two protocols'
	// tracks apart in one trace file.
	tracer := obs.TracerFrom(runCtx)
	traceBase := make(map[int]int)
	if tracer != nil {
		base := 1000
		for _, proto := range []cluster.Protocol{cluster.ParamServer, cluster.AllReduce} {
			for i, p := range points {
				if p.proto == proto && p.nodes == nodeCounts[len(nodeCounts)-1] && p.wireBits == 8 {
					traceBase[i] = base
					base += 1000
					break
				}
			}
		}
	}
	// Each point is a single-goroutine discrete-event simulation, fully
	// deterministic under its seed, so the sweep parallelizes without
	// changing a byte of any point's accounting.
	tstats := make([]*obs.RunStats, len(points))
	cstats := make([]*obs.ClusterStats, len(points))
	finals, err := sweep.Map(*workers, len(points), func(i int) (float64, error) {
		p := points[i]
		var o *obs.Observer
		if report != nil {
			o = &obs.Observer{NumHealth: true}
		}
		tidBase, traced := traceBase[i]
		if traced {
			if o == nil {
				o = &obs.Observer{}
			}
			o.Tracer = tracer
		}
		res, err := cluster.Train(cluster.Config{
			Problem: core.Logistic, Nodes: p.nodes, Protocol: p.proto,
			WireBits: p.wireBits, Quant: kernels.QShared, ErrorFeedback: true,
			StepSize: 0.1, Epochs: epochs, Seed: 7, Observer: o,
			TraceTIDBase: tidBase,
		}, ds)
		if err != nil {
			return 0, err
		}
		tstats[i] = res.Stats
		cstats[i] = res.Cluster
		return res.TrainLoss[len(res.TrainLoss)-1], nil
	})
	if err != nil {
		return err
	}
	reportTrain(tstats...)
	reportCluster(cstats...)
	header("protocol", "nodes", "wire", "final loss", "ex/sim-s", "wire MB", "grad MB", "stale p50", "overlap ms")
	for i, p := range points {
		c := cstats[i]
		row(c.Protocol, p.nodes, fmt.Sprintf("C%d", p.wireBits), finals[i],
			fmt.Sprintf("%.3g", c.ExamplesPerSimSec),
			fmt.Sprintf("%.2f", float64(c.WireBytes)/1e6),
			fmt.Sprintf("%.2f", float64(c.GradBytes)/1e6),
			c.Staleness.Quantile(0.5),
			fmt.Sprintf("%.2f", c.OverlapSavedSeconds*1e3))
	}
	fmt.Println("\nthe 8-bit wire moves ~4x fewer gradient bytes than C32 at nearly the same")
	fmt.Println("final loss (error feedback carries the residual); the parameter server's")
	fmt.Println("staleness grows with node count while the pipelined all-reduce holds it at")
	fmt.Println("one round and hides its communication behind compute")
	return nil
}
