package main

// servload measures the serving tier under production-shaped load: a
// `buckwild serve`-equivalent daemon (real HTTP over loopback) answers
// a ~1.2M-request synthetic replay while supervised training rounds run
// in the background, hot-promoting every checkpoint into serving. The
// experiment reports the tail-latency-vs-training-throughput
// interference both ways — request p50/p99/p999 with and without
// concurrent training, training steps/s with and without concurrent
// load — and finishes with an in-flight drain that must drop zero
// admitted requests (the SIGTERM contract).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"buckwild"
)

func init() {
	register("servload", "serving daemon under ~1M-request replay with concurrent training: tail latency vs training throughput", runServload)
}

// servloadPhase is one measured load window.
type servloadPhase struct {
	name     string
	requests int64
	rejected int64
	errs     int64
	lat      []uint64 // accepted-request latencies, microseconds
	wall     time.Duration
	stepsSec float64 // training throughput during the window (0 = idle)
}

func quantileUS(lat []uint64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	i := int(p * float64(len(lat)-1))
	return float64(lat[i])
}

// stepMeter streams per-epoch cumulative step counts into a shared
// counter so the load windows see live training throughput even when a
// round is cancelled mid-way. OnEpoch runs on the coordinating
// goroutine, so last needs no synchronization.
type stepMeter struct {
	buckwild.NopHooks
	total *atomic.Int64
	last  uint64
}

func (m *stepMeter) OnEpoch(ei buckwild.EpochInfo) {
	if ei.Steps >= m.last {
		m.total.Add(int64(ei.Steps - m.last))
	}
	m.last = ei.Steps
}

func runServload(quick bool) error {
	const features = 64
	clients := 8

	// A serving daemon needs scheduler room for its network path: with
	// GOMAXPROCS at 1 (tiny CI boxes), always-runnable SGD workers
	// starve Go's netpoller and request tails stretch into seconds even
	// though the handler itself runs in microseconds. Give the daemon
	// the few Ps a production deployment would have; the OS timeslices
	// them onto whatever cores exist.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	loadOnly, trainLoad := 200_000, 1_000_000
	trainM, trainEpochs, ckptEvery := 20_000, 64, 8
	if quick {
		loadOnly, trainLoad = 6_000, 24_000
		trainM, trainEpochs, ckptEvery = 2_000, 50, 10
	}

	srv, err := buckwild.NewModelServer(buckwild.ServeConfig{
		Addr:       "127.0.0.1:0",
		QueueDepth: 4096,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()

	dir, err := os.MkdirTemp("", "servload-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	trainDS, err := buckwild.GenerateDense("D8M8", features, trainM, 99)
	if err != nil {
		return err
	}

	// Continuous background training, serve-daemon style: each round
	// extends the cumulative epoch horizon by trainEpochs (resuming from
	// the previous round's checkpoint), and every checkpoint (ckptEvery
	// epochs apart, so supervisor fsyncs don't dominate the round) is a
	// promotion candidate routed through the framed model format. steps
	// meters live per-epoch progress for the throughput windows. horizon
	// is shared across the phases' training stints; only one stint runs
	// at a time, and the done channel orders the accesses.
	var steps atomic.Int64
	horizon := 0
	startTraining := func(ctx context.Context) <-chan struct{} {
		done := make(chan struct{})
		go func() {
			defer close(done)
			for ctx.Err() == nil {
				horizon += trainEpochs
				cfg := buckwild.Config{
					Signature: "D8M8",
					Threads:   2,
					StepSize:  6.0 / features,
					Epochs:    horizon,
					Seed:      99,
					Hooks:     &stepMeter{total: &steps},
					Context:   ctx,
				}
				rc := buckwild.RunConfig{
					CheckpointDir:   dir,
					CheckpointEvery: ckptEvery,
					Snapshotter:     buckwild.SnapshotPromoter(srv),
				}
				if _, err := buckwild.RunDense(cfg, rc, trainDS); err != nil {
					return // context cancelled: the load window is over
				}
			}
		}()
		return done
	}

	// Bootstrap: one supervised round promotes the first model.
	bootCtx, bootCancel := context.WithCancel(context.Background())
	boot := startTraining(bootCtx)
	for srv.Promotions() == 0 {
		time.Sleep(time.Millisecond)
	}
	bootCancel()
	<-boot

	// Request corpus: dense singles from the training distribution plus
	// a batched request every 16th send, JSON pre-encoded so the replay
	// loop measures the daemon, not the client's encoder.
	singles := make([][]byte, 64)
	for i := range singles {
		b, err := json.Marshal(map[string]any{"x": trainDS.Raw[i%trainDS.Len()]})
		if err != nil {
			return err
		}
		singles[i] = b
	}
	batchBody, err := json.Marshal(map[string]any{"batch": trainDS.Raw[:8]})
	if err != nil {
		return err
	}
	url := "http://" + srv.Addr() + "/predict"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

	replay := func(name string, total int, training bool) (servloadPhase, error) {
		ph := servloadPhase{name: name}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var trainDone <-chan struct{}
		if training {
			trainDone = startTraining(ctx)
		}
		steps0 := steps.Load()
		start := time.Now()
		var wg sync.WaitGroup
		lat := make([][]uint64, clients)
		var rejected, errs atomic.Int64
		per := total / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				ls := make([]uint64, 0, per)
				for i := 0; i < per; i++ {
					body := singles[(c*per+i)%len(singles)]
					if i%16 == 15 {
						body = batchBody
					}
					t0 := time.Now()
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						errs.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						ls = append(ls, uint64(time.Since(t0).Microseconds()))
					case http.StatusTooManyRequests:
						rejected.Add(1)
					default:
						errs.Add(1)
					}
				}
				lat[c] = ls
			}(c)
		}
		wg.Wait()
		ph.wall = time.Since(start)
		if training {
			cancel()
			<-trainDone
			ph.stepsSec = float64(steps.Load()-steps0) / ph.wall.Seconds()
		}
		for _, ls := range lat {
			ph.lat = append(ph.lat, ls...)
		}
		sort.Slice(ph.lat, func(i, j int) bool { return ph.lat[i] < ph.lat[j] })
		ph.requests = int64(per * clients)
		ph.rejected = rejected.Load()
		ph.errs = errs.Load()
		if ph.errs > 0 {
			return ph, fmt.Errorf("servload %s: %d requests failed outright", name, ph.errs)
		}
		return ph, nil
	}

	// Warm the connection pool and first-request costs out of the
	// measured phases; its accepted requests still count toward the
	// zero-drop accounting below.
	warmPhase, err := replay("warmup", 32*clients, false)
	if err != nil {
		return err
	}

	loadPhase, err := replay("load-only", loadOnly, false)
	if err != nil {
		return err
	}
	mixPhase, err := replay("train+load", trainLoad, true)
	if err != nil {
		return err
	}

	// Uncontended training baseline: same loop, no load, for a window
	// comparable to the quick phases.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	baseDone := startTraining(baseCtx)
	steps0 := steps.Load()
	baseWindow := 2 * time.Second
	if quick {
		baseWindow = 500 * time.Millisecond
	}
	time.Sleep(baseWindow)
	baseCancel()
	<-baseDone
	baseStepsSec := float64(steps.Load()-steps0) / baseWindow.Seconds()

	// Drain under fire: admitted requests must all complete after the
	// drain begins (the SIGTERM contract), later ones must be refused.
	const driven = 64
	var drainOK, drainRefused atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < driven; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(url, "application/json", bytes.NewReader(singles[i%len(singles)]))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				drainOK.Add(1)
			case http.StatusServiceUnavailable:
				drainRefused.Add(1)
			}
		}(i)
	}
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer drainCancel()
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	wg.Wait()
	stats := srv.Metrics().Snapshot()
	// Zero-drop accounting: every admitted request in the whole run
	// produced a 200 (client-side OKs = server-side accepted count).
	clientOK := int64(len(warmPhase.lat)) + int64(len(loadPhase.lat)) + int64(len(mixPhase.lat)) + drainOK.Load()
	dropped := int64(stats.Requests) - clientOK
	if dropped != 0 {
		return fmt.Errorf("servload: %d admitted requests never produced a 200", dropped)
	}

	reportServe(stats)

	header("phase", "requests", "429", "wall s", "p50 us", "p99 us", "p999 us", "train steps/s")
	for _, ph := range []servloadPhase{loadPhase, mixPhase} {
		trainCol := "idle"
		if ph.stepsSec > 0 {
			trainCol = fmt.Sprintf("%.3g", ph.stepsSec)
		}
		row(ph.name, ph.requests, ph.rejected,
			fmt.Sprintf("%.1f", ph.wall.Seconds()),
			fmt.Sprintf("%.0f", quantileUS(ph.lat, 0.5)),
			fmt.Sprintf("%.0f", quantileUS(ph.lat, 0.99)),
			fmt.Sprintf("%.0f", quantileUS(ph.lat, 0.999)),
			trainCol)
	}
	row("train-only", 0, 0, fmt.Sprintf("%.1f", baseWindow.Seconds()), "-", "-", "-", fmt.Sprintf("%.3g", baseStepsSec))

	fmt.Printf("\nserver-side p50 %.0fus p99 %.0fus (queue+predict, excludes connection time)\n",
		stats.LatencyUS.Quantile(0.5), stats.LatencyUS.Quantile(0.99))
	fmt.Printf("%d requests served off %d hot promotions (%d refused); drain completed\n",
		stats.Requests, stats.Promotions, stats.PromotionsRefused)
	fmt.Printf("%d requests racing the drain: %d admitted and completed, %d refused (503), %d never connected, 0 dropped\n",
		driven, drainOK.Load(), drainRefused.Load(),
		int64(driven)-drainOK.Load()-drainRefused.Load())
	fmt.Println("\nserving and training share the machine: the train+load window shows the")
	fmt.Println("tail-latency cost of background training and the throughput cost of serving —")
	fmt.Println("the paper's cheap low-precision updates are what keep both tolerable")
	return nil
}
