package main

// healthsweep charts the paper's §3 argument as a measurement: the same
// training problem at 4-, 8- and 16-bit model precision, under biased
// (nearest) and unbiased (shared-randomness) rounding, with the engine's
// numerical-health counters on. Saturation rate, gradient underflow and
// mean signed rounding bias — not the raw bit width — explain where the
// final loss degrades.

import (
	"fmt"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
	"buckwild/internal/sweep"
)

func init() {
	register("healthsweep", "numerical health vs model precision and rounding", runHealthSweep)
}

type healthPoint struct {
	m     kernels.Prec
	quant kernels.QuantKind
	name  string
}

func runHealthSweep(quick bool) error {
	m, epochs := 3000, 8
	if quick {
		m, epochs = 1000, 4
	}
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: m, P: kernels.I8, Seed: 68})
	if err != nil {
		return err
	}
	var points []healthPoint
	for _, prec := range []kernels.Prec{kernels.I4, kernels.I8, kernels.I16} {
		for _, q := range []kernels.QuantKind{kernels.QBiased, kernels.QShared} {
			label := "biased"
			if q == kernels.QShared {
				label = "stoch"
			}
			points = append(points, healthPoint{prec, q, fmt.Sprintf("%v/%s", prec, label)})
		}
	}
	// Sequential sharing keeps every point deterministic, so the sweep can
	// run concurrently without changing any counter. The health Observer is
	// always on here — the health numbers ARE the experiment's output.
	tstats := make([]*obs.RunStats, len(points))
	finals, err := sweep.Map(*workers, len(points), func(i int) (float64, error) {
		cfg := core.Config{
			Problem: core.Logistic, D: kernels.I8, M: points[i].m,
			Variant: kernels.HandOpt, Quant: points[i].quant, QuantPeriod: 8,
			Threads: 1, StepSize: 0.1, Epochs: epochs,
			Sharing: core.Sequential, Seed: 7,
			Observer: &obs.Observer{NumHealth: true},
		}
		res, err := core.TrainDense(cfg, ds)
		if err != nil {
			return 0, err
		}
		tstats[i] = res.Stats
		return res.TrainLoss[len(res.TrainLoss)-1], nil
	})
	if err != nil {
		return err
	}
	reportTrain(tstats...)
	header("model/rounding", "final loss", "sat/write", "underflows", "bias quanta", "wts@bounds")
	for i, p := range points {
		h := tstats[i].NumHealth
		satRate := 0.0
		if writes := totalWrites(tstats[i]); writes > 0 {
			satRate = float64(h.Saturations) / float64(writes)
		}
		var atBounds uint64
		if h.Weights != nil {
			atBounds = h.Weights.AtBounds
		}
		row(p.name, finals[i], satRate, h.Underflows,
			fmt.Sprintf("%+.4g", h.Bias.MeanQuanta()), atBounds)
	}
	fmt.Println("\nprecision alone doesn't separate the curves (paper §3): at 4 bits biased")
	fmt.Println("rounding underflows every update and stagnates at the initial loss while")
	fmt.Println("stochastic rounding saturates; the biased mean-bias drift grows with the")
	fmt.Println("quantum where stochastic rounding stays near zero")
	return nil
}

// totalWrites sums a run's model writes across rounding kinds.
func totalWrites(s *obs.RunStats) uint64 {
	var n uint64
	for _, c := range s.ModelWrites {
		n += c
	}
	return n
}
