package main

import (
	"fmt"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/dmgc"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
	"buckwild/internal/obs"
	"buckwild/internal/simd"
	"buckwild/internal/sweep"
)

func init() {
	register("fig5a", "statistical efficiency of rounding strategies (training loss per epoch)", runFig5a)
	register("fig5b", "hardware efficiency of rounding strategies (AXPY-dominated throughput)", runFig5b)
	register("fig5c", "hypothetical 4-bit SGD (D4M4) vs D8M8 throughput", runFig5c)
	register("newinsn", "Section 6.1 proposed vector instructions: end-to-end gain", runNewInsn)
}

func runFig5a(quick bool) error {
	m := 3000
	epochs := 10
	if quick {
		m, epochs = 1000, 4
	}
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: m, P: kernels.I8, Seed: 55})
	if err != nil {
		return err
	}
	strategies := []struct {
		name string
		kind kernels.QuantKind
	}{
		{"biased", kernels.QBiased},
		{"mersenne", kernels.QMersenne},
		{"xorshift", kernels.QXorshift},
		{"shared(8)", kernels.QShared},
	}
	// Sequential-sharing trainings are deterministic, so the strategies
	// can train on worker goroutines without changing the loss curves.
	// Each closure writes only its own tstats slot; reportTrain reads
	// them after the sweep completes.
	tstats := make([]*obs.RunStats, len(strategies))
	losses, err := sweep.Map(*workers, len(strategies), func(i int) ([]float64, error) {
		cfg := core.Config{
			Problem: core.Logistic, D: kernels.I8, M: kernels.I8,
			Variant: kernels.HandOpt, Quant: strategies[i].kind, QuantPeriod: 8,
			Threads: 1, StepSize: 0.02, Epochs: epochs,
			Sharing: core.Sequential, Seed: 9,
			Observer: trainObserver(),
		}
		res, err := core.TrainDense(cfg, ds)
		if err != nil {
			return nil, err
		}
		tstats[i] = res.Stats
		return res.TrainLoss, nil
	})
	if err != nil {
		return err
	}
	reportTrain(tstats...)
	header(append([]string{"epoch"}, names(strategies)...)...)
	for e := 0; e <= epochs; e++ {
		cells := []interface{}{e}
		for i := range strategies {
			cells = append(cells, losses[i][e])
		}
		row(cells...)
	}
	fmt.Println("\nall unbiased strategies track each other; biased rounding stalls (paper Fig 5a)")
	return nil
}

func names(ss []struct {
	name string
	kind kernels.QuantKind
}) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name
	}
	return out
}

func runFig5b(quick bool) error {
	n := 1 << 20
	if quick {
		n = 1 << 16
	}
	cost := simd.Haswell()
	strategies := []struct {
		name string
		kind kernels.QuantKind
	}{
		{"biased", kernels.QBiased},
		{"mersenne", kernels.QMersenne},
		{"xorshift", kernels.QXorshift},
		{"shared(8)", kernels.QShared},
	}
	var points []machine.Workload
	for _, s := range strategies {
		w, err := sigWorkload(dmgc.MustParse("D8M8"), n, 1, false)
		if err != nil {
			return err
		}
		w.Quant = s.kind
		points = append(points, w)
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("strategy", "GNPS", "vs biased", "axpy cyc/elem")
	var base float64
	for i, s := range strategies {
		if s.kind == kernels.QBiased {
			base = rs[i].GNPS
		}
		q := kernels.MustQuantizer(kernels.I8, s.kind, 8, 1)
		k := kernels.MustDense(kernels.I8, kernels.I8, kernels.HandOpt, q)
		cyc := k.AxpyStream(n).Cycles(cost) / float64(n)
		row(s.name, rs[i].GNPS, rs[i].GNPS/base, cyc)
	}
	fmt.Println("\nper-write Mersenne collapses throughput; shared randomness nearly matches biased (paper Fig 5b)")
	return nil
}

func runFig5c(quick bool) error {
	ns := sizes(quick)
	var points []machine.Workload
	for _, n := range ns {
		w8, err := sigWorkload(dmgc.MustParse("D8M8"), n, 18, false)
		if err != nil {
			return err
		}
		w4, err := sigWorkload(dmgc.MustParse("D4M4"), n, 18, false)
		if err != nil {
			return err
		}
		points = append(points, w8, w4)
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("model size", "D8M8", "D4M4", "speedup")
	for i, n := range ns {
		r8, r4 := rs[2*i], rs[2*i+1]
		row(fmt.Sprintf("2^%d", log2(n)), r8.GNPS, r4.GNPS, r4.GNPS/r8.GNPS)
	}
	fmt.Println("\nabout 2x across most settings (paper Fig 5c)")
	return nil
}

func runNewInsn(quick bool) error {
	ns := []int{1 << 16, 1 << 18, 1 << 20}
	if quick {
		ns = ns[:2]
	}
	threads := []int{1, 4}
	var points []machine.Workload
	for _, n := range ns {
		for _, t := range threads {
			w, err := sigWorkload(dmgc.MustParse("D8M8"), n, t, false)
			if err != nil {
				return err
			}
			points = append(points, w)
			w.Variant = kernels.NewInsn
			w.Quant = kernels.QHardware
			points = append(points, w)
		}
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("model size", "threads", "hand-opt", "new insns", "gain")
	i := 0
	for _, n := range ns {
		for _, t := range threads {
			rh, rp := rs[i], rs[i+1]
			i += 2
			row(fmt.Sprintf("2^%d", log2(n)), t, rh.GNPS, rp.GNPS,
				fmt.Sprintf("%+.1f%%", (rp.GNPS/rh.GNPS-1)*100))
		}
	}
	fmt.Println("\npaper Section 6.1 reports consistent 5-15% gains")
	return nil
}
