package main

import (
	"fmt"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/dmgc"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
	"buckwild/internal/obs"
	"buckwild/internal/sweep"
)

func init() {
	register("fig6a", "disabling the prefetcher: dense model-size sweep", runFig6a)
	register("fig6b", "disabling the prefetcher: sparse model-size sweep", runFig6b)
	register("fig6c", "obstinate cache: throughput vs obstinacy q (simulator)", runFig6c)
	register("fig6d", "mini-batch size sweep: throughput", runFig6d)
	register("fig6e", "mini-batch size sweep: statistical efficiency", runFig6e)
	register("fig6f", "obstinate cache: statistical efficiency vs q", runFig6f)
}

func prefetchSweep(sigName string, sparse bool, quick bool) error {
	ns := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
	if quick {
		ns = []int{1 << 8, 1 << 12, 1 << 16}
	}
	var points []machine.Workload
	for _, n := range ns {
		w, err := sigWorkload(dmgc.MustParse(sigName), n, 18, sparse)
		if err != nil {
			return err
		}
		w.Prefetch = true
		points = append(points, w)
		w.Prefetch = false
		points = append(points, w)
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	header("model size", "prefetch on", "prefetch off", "off/on speedup")
	for i, n := range ns {
		on, off := rs[2*i], rs[2*i+1]
		row(fmt.Sprintf("2^%d", log2(n)), on.GNPS, off.GNPS, off.GNPS/on.GNPS)
	}
	fmt.Println("\nspeedups appear for small (communication-bound) models (paper Fig 6a/6b, up to 150%)")
	return nil
}

func runFig6a(quick bool) error { return prefetchSweep("D8M8", false, quick) }
func runFig6b(quick bool) error { return prefetchSweep("D8i8M8", true, quick) }

func runFig6c(quick bool) error {
	ns := []int{1 << 8, 1 << 10, 1 << 12, 1 << 16, 1 << 20}
	if quick {
		ns = []int{1 << 8, 1 << 12, 1 << 16}
	}
	qs := []float64{0, 0.25, 0.5, 0.75, 0.95}
	var points []machine.Workload
	for _, n := range ns {
		for _, q := range qs {
			w, err := sigWorkload(dmgc.MustParse("D8M8"), n, 18, false)
			if err != nil {
				return err
			}
			w.Obstinacy = q
			points = append(points, w)
		}
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	cols := []string{"model size"}
	for _, q := range qs {
		cols = append(cols, fmt.Sprintf("q=%.2f", q))
	}
	header(cols...)
	for i, n := range ns {
		cells := []interface{}{fmt.Sprintf("2^%d", log2(n))}
		for j := range qs {
			cells = append(cells, rs[i*len(qs)+j].GNPS)
		}
		row(cells...)
	}
	fmt.Println("\nat q around 0.5 the small-model cost largely disappears (paper Fig 6c)")
	return nil
}

func runFig6d(quick bool) error {
	bs := []int{1, 4, 16, 64, 256}
	ns := []int{1 << 8, 1 << 10, 1 << 12, 1 << 16}
	if quick {
		bs = []int{1, 16, 64}
		ns = []int{1 << 8, 1 << 12}
	}
	var points []machine.Workload
	for _, n := range ns {
		for _, b := range bs {
			w, err := sigWorkload(dmgc.MustParse("D8M8"), n, 18, false)
			if err != nil {
				return err
			}
			w.MiniBatch = b
			points = append(points, w)
		}
	}
	rs, err := simulateAll(machine.Xeon(), points)
	if err != nil {
		return err
	}
	cols := []string{"model size"}
	for _, b := range bs {
		cols = append(cols, fmt.Sprintf("B=%d", b))
	}
	header(cols...)
	for i, n := range ns {
		cells := []interface{}{fmt.Sprintf("2^%d", log2(n))}
		for j := range bs {
			cells = append(cells, rs[i*len(bs)+j].GNPS)
		}
		row(cells...)
	}
	fmt.Println("\nlarge B lifts small models toward the large-model plateau (paper Fig 6d)")
	return nil
}

func runFig6e(quick bool) error {
	m, epochs := 4000, 8
	if quick {
		m, epochs = 1000, 4
	}
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: m, P: kernels.I8, Seed: 66})
	if err != nil {
		return err
	}
	bs := []int{1, 4, 16, 64, 256}
	// Sequential-sharing trainings are deterministic, so the batch sizes
	// can train concurrently without changing the losses. Each closure
	// writes only its own tstats slot; reportTrain reads them after the
	// sweep completes.
	tstats := make([]*obs.RunStats, len(bs))
	finals, err := sweep.Map(*workers, len(bs), func(i int) (float64, error) {
		cfg := core.Config{
			Problem: core.Logistic, D: kernels.I8, M: kernels.I8,
			Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
			Threads: 1, MiniBatch: bs[i], StepSize: 0.1, Epochs: epochs,
			Sharing: core.Sequential, Seed: 5,
			Observer: trainObserver(),
		}
		res, err := core.TrainDense(cfg, ds)
		if err != nil {
			return 0, err
		}
		tstats[i] = res.Stats
		return res.TrainLoss[len(res.TrainLoss)-1], nil
	})
	if err != nil {
		return err
	}
	reportTrain(tstats...)
	header("mini-batch B", "final training loss")
	for i, b := range bs {
		row(b, finals[i])
	}
	fmt.Println("\naccuracy degrades once B is too large for the epoch budget (paper Fig 6e)")
	return nil
}

func runFig6f(quick bool) error {
	m, epochs := 3000, 8
	if quick {
		m, epochs = 1000, 4
	}
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: m, P: kernels.I8, Seed: 67})
	if err != nil {
		return err
	}
	qs := []float64{0, 0.25, 0.5, 0.75, 0.95}
	// Racy-sharing trainings race by design, so their losses vary run to
	// run regardless of how the sweep is scheduled; each point still
	// trains its own private model (and its own counter shards, which
	// stay exact — only the model races). Each closure writes only its
	// own tstats slot; reportTrain reads them after the sweep completes.
	tstats := make([]*obs.RunStats, len(qs))
	finals, err := sweep.Map(*workers, len(qs), func(i int) (float64, error) {
		cfg := core.Config{
			Problem: core.Logistic, D: kernels.I8, M: kernels.I8,
			Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
			Threads: 4, StepSize: 0.1, Epochs: epochs,
			Sharing: core.Racy, ObstinateQ: qs[i], Seed: 6,
			Observer: trainObserver(),
		}
		res, err := core.TrainDense(cfg, ds)
		if err != nil {
			return 0, err
		}
		tstats[i] = res.Stats
		return res.TrainLoss[len(res.TrainLoss)-1], nil
	})
	if err != nil {
		return err
	}
	reportTrain(tstats...)
	header("obstinacy q", "final training loss")
	for i, q := range qs {
		row(fmt.Sprintf("%.2f", q), finals[i])
	}
	fmt.Println("\nno detectable statistical-efficiency loss even at q=0.95 (paper Fig 6f)")
	return nil
}
