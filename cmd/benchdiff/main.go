// Command benchdiff compares two trajectory files written by
// cmd/experiments -json and fails when wall-clock time regressed.
//
// Usage:
//
//	benchdiff [-tolerance pct] [-min-wall seconds] baseline.json fresh.json
//
// Every experiment present in both files is compared; one whose fresh
// wall time exceeds the baseline by more than -tolerance percent (default
// 25) is a regression, unless both times sit below the -min-wall floor
// (default 1s), where scheduler noise dominates and the comparison would
// gate on jitter. The files' total times are compared the same way. Any
// regression makes the exit status 1, so CI can gate on it; experiments
// present in only one file are reported but never fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// benchFile mirrors the cmd/experiments -json document (the subset
// benchdiff reads).
type benchFile struct {
	Date         string        `json:"date"`
	Quick        bool          `json:"quick"`
	TotalSeconds float64       `json:"total_seconds"`
	Experiments  []benchRecord `json:"experiments"`
}

type benchRecord struct {
	ID           string  `json:"id"`
	WallSeconds  float64 `json:"wall_seconds"`
	HeadlineGNPS float64 `json:"headline_gnps,omitempty"`
}

// delta is one comparison row.
type delta struct {
	ID           string
	Base, Fresh  float64
	Regressed    bool
	BaselineOnly bool // present in the baseline but not the fresh run
	FreshOnly    bool // present in the fresh run but not the baseline
}

func (d delta) pct() float64 {
	if d.Base == 0 {
		return 0
	}
	return (d.Fresh/d.Base - 1) * 100
}

// ratio is the wall-clock speedup base/fresh: above 1x the fresh run is
// faster, below 1x it is slower.
func (d delta) ratio() float64 {
	if d.Fresh == 0 {
		return 0
	}
	return d.Base / d.Fresh
}

// diff compares the two files. tolPct is the allowed slowdown in
// percent; pairs where both sides are under minWall seconds are
// reported but never regress.
func diff(base, fresh benchFile, tolPct, minWall float64) []delta {
	baseline := make(map[string]benchRecord, len(base.Experiments))
	for _, e := range base.Experiments {
		baseline[e.ID] = e
	}
	regressed := func(b, f float64) bool {
		return f > b*(1+tolPct/100) && (b >= minWall || f >= minWall)
	}
	var ds []delta
	for _, f := range fresh.Experiments {
		b, ok := baseline[f.ID]
		if !ok {
			ds = append(ds, delta{ID: f.ID, Fresh: f.WallSeconds, FreshOnly: true})
			continue
		}
		delete(baseline, f.ID)
		ds = append(ds, delta{
			ID: f.ID, Base: b.WallSeconds, Fresh: f.WallSeconds,
			Regressed: regressed(b.WallSeconds, f.WallSeconds),
		})
	}
	for _, e := range base.Experiments {
		if _, stale := baseline[e.ID]; stale {
			ds = append(ds, delta{ID: e.ID, Base: e.WallSeconds, BaselineOnly: true})
		}
	}
	ds = append(ds, delta{
		ID: "TOTAL", Base: base.TotalSeconds, Fresh: fresh.TotalSeconds,
		Regressed: regressed(base.TotalSeconds, fresh.TotalSeconds),
	})
	return ds
}

func load(path string) (benchFile, error) {
	var bf benchFile
	buf, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(buf, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	return bf, nil
}

func main() {
	tol := flag.Float64("tolerance", 25, "allowed wall-clock slowdown in percent before failing")
	minWall := flag.Float64("min-wall", 1, "skip regression checks when both sides ran under this many seconds")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance pct] [-min-wall seconds] baseline.json fresh.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err == nil {
		var fresh benchFile
		fresh, err = load(flag.Arg(1))
		if err == nil {
			if base.Quick != fresh.Quick {
				fmt.Fprintf(os.Stderr, "benchdiff: baseline quick=%v but fresh quick=%v: not comparable\n", base.Quick, fresh.Quick)
				os.Exit(2)
			}
			os.Exit(report(diff(base, fresh, *tol, *minWall), *tol))
		}
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

// report prints the comparison table and returns the exit status. Every
// compared row carries its speedup ratio (base/fresh; above 1x the fresh
// run is faster), and a closing summary line states the verdict plus the
// geometric mean of the per-experiment ratios, so a green run still shows
// how much was won or lost instead of exiting silently.
func report(ds []delta, tolPct float64) int {
	fmt.Printf("%-10s %12s %12s %9s %9s\n", "experiment", "base (s)", "fresh (s)", "delta", "speedup")
	status := 0
	compared, regressions := 0, 0
	logSum := 0.0
	for _, d := range ds {
		switch {
		case d.FreshOnly:
			fmt.Printf("%-10s %12s %12.3f %9s %9s  new (no baseline)\n", d.ID, "-", d.Fresh, "-", "-")
		case d.BaselineOnly:
			fmt.Printf("%-10s %12.3f %12s %9s %9s  missing from fresh run\n", d.ID, d.Base, "-", "-", "-")
		default:
			note := ""
			if d.Regressed {
				note = fmt.Sprintf("  REGRESSION (> +%g%%)", tolPct)
				status = 1
			}
			fmt.Printf("%-10s %12.3f %12.3f %+8.1f%% %8.2fx%s\n", d.ID, d.Base, d.Fresh, d.pct(), d.ratio(), note)
			if d.ID != "TOTAL" {
				compared++
				if d.Regressed {
					regressions++
				}
				if r := d.ratio(); r > 0 {
					logSum += math.Log(r)
				}
			}
		}
	}
	geo := 0.0
	if compared > 0 {
		geo = math.Exp(logSum / float64(compared))
	}
	if status == 0 {
		fmt.Printf("OK: %d experiments compared, geomean speedup %.2fx, no regressions (tolerance +%g%%)\n", compared, geo, tolPct)
	} else {
		fmt.Printf("FAIL: %d of %d experiments regressed (tolerance +%g%%), geomean speedup %.2fx\n", regressions, compared, tolPct, geo)
	}
	return status
}
