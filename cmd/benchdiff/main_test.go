package main

import (
	"os"
	"path/filepath"
	"testing"
)

func mk(total float64, recs ...benchRecord) benchFile {
	return benchFile{TotalSeconds: total, Experiments: recs}
}

func find(t *testing.T, ds []delta, id string) delta {
	t.Helper()
	for _, d := range ds {
		if d.ID == id {
			return d
		}
	}
	t.Fatalf("no delta for %q", id)
	return delta{}
}

func TestDiffRegression(t *testing.T) {
	base := mk(100, benchRecord{ID: "a", WallSeconds: 10}, benchRecord{ID: "b", WallSeconds: 10})
	fresh := mk(105, benchRecord{ID: "a", WallSeconds: 13}, benchRecord{ID: "b", WallSeconds: 11})
	ds := diff(base, fresh, 25, 1)
	if d := find(t, ds, "a"); !d.Regressed {
		t.Errorf("a: +30%% at tolerance 25%% should regress: %+v", d)
	}
	if d := find(t, ds, "b"); d.Regressed {
		t.Errorf("b: +10%% at tolerance 25%% should pass: %+v", d)
	}
	if d := find(t, ds, "TOTAL"); d.Regressed {
		t.Errorf("TOTAL: +5%% should pass: %+v", d)
	}
}

func TestDiffExactTolerance(t *testing.T) {
	// Exactly +25% is not a regression: the gate is strictly greater.
	ds := diff(mk(10, benchRecord{ID: "a", WallSeconds: 8}), mk(12.5, benchRecord{ID: "a", WallSeconds: 10}), 25, 1)
	for _, d := range ds {
		if d.Regressed {
			t.Errorf("%s: exactly +25%% should pass", d.ID)
		}
	}
}

func TestDiffMinWallFloor(t *testing.T) {
	// Both sides in the noise floor: a 3x slowdown of a 30ms experiment
	// must not gate. A slow experiment collapsing under the floor still
	// compares (and here improves).
	base := mk(50, benchRecord{ID: "tiny", WallSeconds: 0.03}, benchRecord{ID: "big", WallSeconds: 40})
	fresh := mk(50, benchRecord{ID: "tiny", WallSeconds: 0.09}, benchRecord{ID: "big", WallSeconds: 0.5})
	ds := diff(base, fresh, 25, 1)
	if d := find(t, ds, "tiny"); d.Regressed {
		t.Errorf("tiny: sub-floor pair should never regress: %+v", d)
	}
	if d := find(t, ds, "big"); d.Regressed {
		t.Errorf("big: speedup should pass: %+v", d)
	}
	// The floor does not hide a real regression of a big experiment.
	ds = diff(mk(50, benchRecord{ID: "big", WallSeconds: 40}), mk(80, benchRecord{ID: "big", WallSeconds: 70}), 25, 1)
	if d := find(t, ds, "big"); !d.Regressed {
		t.Errorf("big: +75%% should regress: %+v", d)
	}
}

func TestDiffDisjointSets(t *testing.T) {
	base := mk(10, benchRecord{ID: "old", WallSeconds: 5})
	fresh := mk(10, benchRecord{ID: "new", WallSeconds: 5})
	ds := diff(base, fresh, 25, 1)
	if d := find(t, ds, "new"); !d.FreshOnly || d.Regressed {
		t.Errorf("new: want FreshOnly, not regressed: %+v", d)
	}
	if d := find(t, ds, "old"); !d.BaselineOnly || d.Regressed {
		t.Errorf("old: want BaselineOnly, not regressed: %+v", d)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	doc := `{"date":"2026-08-05T00:00:00Z","quick":true,"total_seconds":12.5,
		"experiments":[{"id":"fig2","wall_seconds":5.5,"headline_gnps":57.9}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	bf, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bf.Quick || bf.TotalSeconds != 12.5 || len(bf.Experiments) != 1 || bf.Experiments[0].ID != "fig2" {
		t.Errorf("load: %+v", bf)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("load of a missing file should fail")
	}
}

func TestRatio(t *testing.T) {
	cases := []struct {
		d    delta
		want float64
	}{
		{delta{Base: 10, Fresh: 5}, 2},   // 2x faster
		{delta{Base: 5, Fresh: 10}, 0.5}, // 2x slower
		{delta{Base: 3, Fresh: 3}, 1},    // unchanged
		{delta{Base: 10, Fresh: 0}, 0},   // degenerate fresh time
	}
	for _, c := range cases {
		if got := c.d.ratio(); got != c.want {
			t.Errorf("ratio(base=%g, fresh=%g) = %g, want %g", c.d.Base, c.d.Fresh, got, c.want)
		}
	}
}

func TestReportExitStatus(t *testing.T) {
	ok := []delta{{ID: "a", Base: 1, Fresh: 1}}
	if got := report(ok, 25); got != 0 {
		t.Errorf("clean diff: exit %d, want 0", got)
	}
	bad := []delta{{ID: "a", Base: 1, Fresh: 2, Regressed: true}}
	if got := report(bad, 25); got != 1 {
		t.Errorf("regressed diff: exit %d, want 1", got)
	}
}
