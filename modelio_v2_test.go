package buckwild

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestModelFormatV2Frame(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, "D8M8", []float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.Equal(b[:4], mdlMagic[:]) || b[4] != mdlVersion {
		t.Fatalf("frame header % x", b[:5])
	}
	m, err := LoadModel(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if m.Signature != "D8M8" || len(m.Weights) != 3 {
		t.Fatalf("loaded %+v", m)
	}
}

func TestLoadModelReadsV1(t *testing.T) {
	// A v1 file is a bare gob of SavedModel, as written before the frame
	// existed.
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(SavedModel{Signature: "D16M16", Weights: []float32{0.5, -0.5}}); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if m.Signature != "D16M16" || len(m.Weights) != 2 || m.Weights[0] != 0.5 {
		t.Fatalf("v1 loaded wrong: %+v", m)
	}
}

func TestLoadModelDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, "", []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0xFF // flip a payload byte; the stored CRC no longer matches
	if _, err := LoadModel(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted model loaded: %v", err)
	}
}

func TestLoadModelTruncatedAndBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, "", []float32{1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{2, 10, len(b) - 3} {
		if _, err := LoadModel(bytes.NewReader(b[:cut])); err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("truncation at %d: %v", cut, err)
		}
	}
	bad := append([]byte(nil), b...)
	bad[4] = 99
	if _, err := LoadModel(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("future version: %v", err)
	}
}

func TestSaveModelSignatureTyped(t *testing.T) {
	sig, err := ParseSignature("D8i16M8")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModelSignature(&buf, sig, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Signature != sig.String() {
		t.Fatalf("signature %q, want %q", m.Signature, sig.String())
	}
}

func TestLoadModelFileNamesPath(t *testing.T) {
	path := t.TempDir() + "/broken.bkm"
	if err := osWriteFile(path, "definitely not a model"); err != nil {
		t.Fatal(err)
	}
	_, err := LoadModelFile(path)
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("error should name %s: %v", path, err)
	}
	if !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Fatalf("error lacks facade prefix: %v", err)
	}
}
