package buckwild

import (
	"strings"
	"testing"
)

// sameResult asserts two results are bit-identical in model and losses.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.W) != len(b.W) || len(a.TrainLoss) != len(b.TrainLoss) {
		t.Fatalf("%s: result shapes differ", label)
	}
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatalf("%s: W[%d] = %v vs %v", label, j, a.W[j], b.W[j])
		}
	}
	for i := range a.TrainLoss {
		if a.TrainLoss[i] != b.TrainLoss[i] {
			t.Fatalf("%s: loss[%d] = %v vs %v", label, i, a.TrainLoss[i], b.TrainLoss[i])
		}
	}
	if a.Steps != b.Steps {
		t.Fatalf("%s: steps %d vs %d", label, a.Steps, b.Steps)
	}
}

// TestTrainUnifiesEntryPoints pins the satellite contract: the unified
// Train and the historical wrappers produce bit-identical results for the
// same config and seed.
func TestTrainUnifiesEntryPoints(t *testing.T) {
	dense, err := GenerateDense("D8M8", 64, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Signature: "D8M8", Epochs: 3, Seed: 7, Threads: 1}
	viaWrapper, err := TrainDense(cfg, dense)
	if err != nil {
		t.Fatal(err)
	}
	viaTrain, err := Train(cfg, dense)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "dense", viaWrapper, viaTrain)

	sparse, err := GenerateSparse("D8i16M8", 256, 600, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	scfg := Config{Signature: "D8i16M8", Epochs: 3, Seed: 7, Threads: 1}
	sWrapper, err := TrainSparse(scfg, sparse)
	if err != nil {
		t.Fatal(err)
	}
	sTrain, err := Train(scfg, sparse)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sparse", sWrapper, sTrain)
}

func TestTrainRejectsOtherDatasets(t *testing.T) {
	if _, err := Train(Config{}, nil); err == nil || err.Error() != "buckwild: nil dataset" {
		t.Errorf("nil dataset: %v", err)
	}
	if _, err := Train(Config{}, fakeDataset{}); err == nil ||
		!strings.Contains(err.Error(), "unsupported dataset type") {
		t.Errorf("foreign dataset: %v", err)
	}
	// A typed-nil dense dataset behaves exactly like the old wrapper: the
	// config is validated first, then the empty-dataset check fires.
	var dense *DenseDataset
	if _, err := Train(Config{}, dense); err == nil || err.Error() != "buckwild: empty dataset" {
		t.Errorf("typed-nil dense: %v", err)
	}
}

type fakeDataset struct{}

func (fakeDataset) Len() int { return 1 }
func (fakeDataset) Dim() int { return 1 }

// TestValidateErrorTextUnchanged pins the exact historical error strings
// of Config.Validate — the facade redesign must not reword them.
func TestValidateErrorTextUnchanged(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Problem: "ridge"}, `buckwild: unknown problem "ridge"`},
		{Config{Rounding: "unbiased-quantum"}, `buckwild: unknown rounding "unbiased-quantum"`},
		{Config{Threads: -1}, "buckwild: negative thread count -1"},
		{Config{MiniBatch: -2}, "buckwild: negative mini-batch size -2"},
		{Config{Epochs: -1}, "buckwild: negative epoch count -1"},
		{Config{StepSize: -0.5}, "buckwild: negative step size -0.5"},
		{Config{StepDecay: -1}, "buckwild: negative step decay -1"},
		{Config{StepSample: -3}, "buckwild: negative step-sample period -3"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil || err.Error() != c.want {
			t.Errorf("Validate(%+v) = %v, want %q", c.cfg, err, c.want)
		}
	}
}

func TestClusterConfigValidate(t *testing.T) {
	bad := []Config{
		{Cluster: ClusterConfig{Nodes: -1}},
		{Cluster: ClusterConfig{Nodes: 2, Protocol: "ring"}},
		{Cluster: ClusterConfig{Nodes: 2, WireBits: 7}},
		{Cluster: ClusterConfig{Nodes: 2, BatchPerNode: -1}},
		{Cluster: ClusterConfig{Nodes: 2, StalenessAlpha: -1}},
		{Cluster: ClusterConfig{Nodes: 2, LatencySec: -1}},
		{Cluster: ClusterConfig{Nodes: 2, BandwidthBps: -1}},
		{Cluster: ClusterConfig{Nodes: 2, HeaderBytes: -1}},
		{Cluster: ClusterConfig{Nodes: 2, ComputeGNPS: -1}},
	}
	for i, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Errorf("case %d: bad cluster config accepted: %+v", i, cfg.Cluster)
			continue
		}
		if !strings.HasPrefix(err.Error(), "buckwild:") {
			t.Errorf("case %d: error %q lacks the buckwild: prefix", i, err)
		}
	}
	// The zero value means "no cluster" and must validate.
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config: %v", err)
	}
	if err := (Config{Cluster: ClusterConfig{Nodes: 1}}).Validate(); err != nil {
		t.Errorf("single node: %v", err)
	}
}

func TestClusterFacadeRouting(t *testing.T) {
	ds, err := GenerateDense("", 48, 512, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Zero cluster config: today's behavior, no cluster stats.
	solo, err := Train(Config{Epochs: 2, Seed: 3}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Cluster != nil {
		t.Fatal("single-machine run reported cluster stats")
	}

	cfg := Config{
		Epochs: 2, Seed: 3,
		Cluster: ClusterConfig{
			Nodes: 4, Protocol: AllReduceProtocol, WireBits: 8, ErrorFeedback: true,
		},
	}
	res, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cluster
	if c == nil {
		t.Fatal("cluster run reported no cluster stats")
	}
	if c.Nodes != 4 || c.Protocol != "all-reduce" || c.WireBits != 8 {
		t.Errorf("cluster identity: %+v", c)
	}
	if c.WireBytes == 0 || c.WireBytes != c.HeaderBytes+c.GradBytes+c.ModelBytes {
		t.Errorf("wire accounting: %+v", c)
	}
	if last := res.TrainLoss[len(res.TrainLoss)-1]; last >= res.TrainLoss[0] {
		t.Errorf("cluster run did not improve: %v", res.TrainLoss)
	}

	// Deterministic through the facade.
	again, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "cluster rerun", res, again)

	// TrainDense routes identically.
	wrapped, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "cluster wrapper", res, wrapped)
}

func TestClusterWireBitsFromSignature(t *testing.T) {
	ds, err := GenerateDense("D32fM32fC8", 32, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(Config{
		Signature: "D32fM32fC8", Epochs: 1,
		Cluster: ClusterConfig{Nodes: 2},
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster.WireBits != 8 {
		t.Errorf("wire bits %d, want 8 from the signature's C term", res.Cluster.WireBits)
	}
	// No C term: full-precision wire.
	plain, err := Train(Config{Epochs: 1, Cluster: ClusterConfig{Nodes: 2}}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cluster.WireBits != 32 {
		t.Errorf("wire bits %d, want 32 without a C term", plain.Cluster.WireBits)
	}
}

func TestClusterSparseRejected(t *testing.T) {
	sds, err := GenerateSparse("D8i16M8", 64, 128, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Signature: "D8i16M8", Cluster: ClusterConfig{Nodes: 2}}
	_, err = Train(cfg, sds)
	if err == nil || !strings.Contains(err.Error(), "dense datasets only") {
		t.Errorf("sparse cluster run: %v", err)
	}
}

func TestClusterStalenessCompensationThroughFacade(t *testing.T) {
	ds, err := GenerateDense("", 32, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(Config{
		Epochs: 2,
		Cluster: ClusterConfig{
			Nodes: 6, Protocol: ParameterServer, StalenessAlpha: 0.4,
		},
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster.CompensatedUpdates == 0 {
		t.Errorf("no compensated updates on a 6-node parameter server: %+v", res.Cluster)
	}
	if res.Cluster.Staleness.Count == 0 {
		t.Error("staleness histogram empty")
	}
}

// TestSimulateThroughputOptsMatchesVariadic pins that the explicit form
// and the deprecated variadic form are the same simulation.
func TestSimulateThroughputOptsMatchesVariadic(t *testing.T) {
	opt := SimOptions{Variant: "generic", Seed: 5}
	a, err := SimulateThroughputOpts("D8M8", 1<<12, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateThroughput("D8M8", 1<<12, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.GNPS != b.GNPS {
		t.Errorf("variadic GNPS %v != explicit %v", b.GNPS, a.GNPS)
	}
	if _, err := SimulateThroughput("D8M8", 1<<12, 1, SimOptions{}, SimOptions{}); err == nil {
		t.Error("two SimOptions should fail")
	}
}
