package buckwild

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func testModel(t *testing.T, dim int) *Model {
	t.Helper()
	w := make([]float32, dim)
	for j := range w {
		w[j] = float32(j%7) - 3
	}
	m, err := NewModel("D8M8", w)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPredictTypedErrors(t *testing.T) {
	m := testModel(t, 8)
	tests := []struct {
		name string
		call func() error
		want error
	}{
		{"sparse empty", func() error {
			_, err := m.PredictSparse(nil, nil)
			return err
		}, ErrEmptyExample},
		{"sparse length mismatch", func() error {
			_, err := m.PredictSparse([]int32{0, 1}, []float32{1})
			return err
		}, ErrDimension},
		{"sparse index out of range", func() error {
			_, err := m.PredictSparse([]int32{8}, []float32{1})
			return err
		}, ErrIndexRange},
		{"sparse negative index", func() error {
			_, err := m.PredictSparse([]int32{-1}, []float32{1})
			return err
		}, ErrIndexRange},
		{"dense empty", func() error {
			_, err := m.PredictDense(nil)
			return err
		}, ErrEmptyExample},
		{"dense dimension mismatch", func() error {
			_, err := m.PredictDense(make([]float32, 5))
			return err
		}, ErrDimension},
		{"batch empty example", func() error {
			_, err := m.PredictBatch([][]float32{make([]float32, 8), nil}, nil)
			return err
		}, ErrEmptyExample},
		{"batch out length mismatch", func() error {
			_, err := m.PredictBatch([][]float32{make([]float32, 8)}, make([]float32, 3))
			return err
		}, ErrDimension},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want errors.Is(err, %v)", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "buckwild:") {
				t.Errorf("error %q lacks buckwild: prefix", err)
			}
		})
	}

	// The deprecated SavedModel wrappers surface the same typed errors.
	sm := &SavedModel{Signature: "D8M8", Weights: make([]float32, 8)}
	if _, err := sm.Predict(nil, nil); !errors.Is(err, ErrEmptyExample) {
		t.Errorf("SavedModel.Predict empty: %v", err)
	}
	if _, err := sm.Predict([]int32{0}, []float32{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("SavedModel.Predict mismatch: %v", err)
	}
	if _, err := sm.PredictDense(make([]float32, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("SavedModel.PredictDense mismatch: %v", err)
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel("bogus", make([]float32, 4)); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("bad signature: %v", err)
	}
	if _, err := NewModel("D8M8", nil); err == nil {
		t.Error("empty weights should fail")
	}

	// The model copies its weights on the way in and out: neither
	// mutating the source nor the Weights() result can change what the
	// handle predicts.
	w := []float32{1, 2, 3, 4}
	m, err := NewModel("D8M8", w)
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.PredictDense([]float32{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	w[0] = 100
	m.Weights()[1] = 100
	after, err := m.PredictDense([]float32{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("prediction changed after mutating source weights: %v -> %v", before, after)
	}
	if m.Dim() != 4 || m.Signature() != "D8M8" {
		t.Errorf("Dim/Signature: %d %v", m.Dim(), m.Signature())
	}
}

func TestPredictBatch(t *testing.T) {
	m := testModel(t, 6)
	xs := make([][]float32, 9)
	rng := rand.New(rand.NewSource(4))
	for i := range xs {
		xs[i] = make([]float32, 6)
		for j := range xs[i] {
			xs[i][j] = rng.Float32() - 0.5
		}
	}

	allocated, err := m.PredictBatch(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocated) != len(xs) {
		t.Fatalf("allocated out length %d, want %d", len(allocated), len(xs))
	}

	out := make([]float32, len(xs))
	reused, err := m.PredictBatch(xs, out)
	if err != nil {
		t.Fatal(err)
	}
	if &reused[0] != &out[0] {
		t.Error("preallocated out was not reused")
	}
	for i := range xs {
		single, err := m.PredictDense(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float32bits(single) != math.Float32bits(allocated[i]) ||
			math.Float32bits(single) != math.Float32bits(reused[i]) {
			t.Errorf("example %d: batch %v/%v != single %v", i, allocated[i], reused[i], single)
		}
	}
}

// TestSavedModelHandleBitIdentity pins the one-predict-implementation
// rule: a model loaded from disk predicts bit-identically through the
// deprecated SavedModel wrappers, through its Handle(), and through a
// NewModel built from the same weights.
func TestSavedModelHandleBitIdentity(t *testing.T) {
	ds, err := GenerateDense("D8M8", 32, 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(Config{Signature: "D8M8", Threads: 2, Epochs: 3, StepSize: 0.05, Seed: 9}, ds)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.bkm")
	if err := SaveModelFile(path, "D8M8", res.W); err != nil {
		t.Fatal(err)
	}
	sm, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sm.Handle()
	if err != nil {
		t.Fatal(err)
	}
	nm, err := NewModel(sm.Signature, sm.Weights)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 100; i++ {
		x := make([]float32, 32)
		var idx []int32
		var vals []float32
		for j := range x {
			x[j] = rng.Float32() - 0.5
			if rng.Intn(3) == 0 {
				idx = append(idx, int32(j))
				vals = append(vals, x[j])
			}
		}
		d0, err := sm.PredictDense(x)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := h.PredictDense(x)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := nm.PredictDense(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float32bits(d0) != math.Float32bits(d1) || math.Float32bits(d0) != math.Float32bits(d2) {
			t.Fatalf("dense %d: SavedModel %x, Handle %x, NewModel %x", i, math.Float32bits(d0), math.Float32bits(d1), math.Float32bits(d2))
		}
		if len(idx) == 0 {
			continue
		}
		s0, err := sm.Predict(idx, vals)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := h.PredictSparse(idx, vals)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float32bits(s0) != math.Float32bits(s1) {
			t.Fatalf("sparse %d: SavedModel %x, Handle %x", i, math.Float32bits(s0), math.Float32bits(s1))
		}
	}
}

// TestSnapshotPromoterEndToEnd drives the facade promotion pipeline: a
// supervised run's checkpoints flow through the Snapshotter, round-trip
// the framed model format, and land in the server as live promotions.
func TestSnapshotPromoterEndToEnd(t *testing.T) {
	srv, err := NewModelServer(ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ds, err := GenerateDense("D8M8", 24, 300, 17)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDense(
		Config{Signature: "D8M8", Epochs: 3, StepSize: 0.05, Seed: 2},
		RunConfig{CheckpointDir: t.TempDir(), Snapshotter: SnapshotPromoter(srv)},
		ds,
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Promotions(); got == 0 {
		t.Fatal("no promotions after a supervised run with a SnapshotPromoter")
	}
	st := srv.Metrics().Snapshot()
	if st.PromotionsRefused != 0 {
		t.Errorf("refused promotions: %d", st.PromotionsRefused)
	}
	if st.ModelEpoch != 3 {
		t.Errorf("served model epoch = %d, want 3", st.ModelEpoch)
	}

	// The promoted model predicts exactly what the run's final weights
	// predict — the frame round-trip cannot perturb bits.
	m, err := NewModel("D8M8", rep.Result.W)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 24)
	for j := range x {
		x[j] = float32(j) / 24
	}
	want, err := m.PredictDense(x)
	if err != nil {
		t.Fatal(err)
	}
	live, _, _ := srv.Current()
	if live == nil {
		t.Fatal("no live model after promotion")
	}
	got, err := live.PredictDense(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float32bits(want) != math.Float32bits(got) {
		t.Errorf("promoted prediction %x != final-weights prediction %x", math.Float32bits(got), math.Float32bits(want))
	}
}
