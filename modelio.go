package buckwild

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"buckwild/internal/dataset"
	"buckwild/internal/fixed"
)

// SavedModel is the on-disk representation of a trained model: the
// signature it was trained under and the dequantized weights.
type SavedModel struct {
	Signature string
	Weights   []float32
}

// Model files are framed as
//
//	magic[4] | version[1] | crc32[4] | payloadLen[8] | payload
//
// with big-endian integers and an IEEE CRC over the gob-encoded payload,
// so a torn or corrupted file is detected instead of decoded into
// garbage weights. The first magic byte 0xBF can never begin a gob
// stream, which is how LoadModel tells a v2 frame from a bare v1 gob:
// files written before the frame existed (format v1) still load.
var mdlMagic = [4]byte{0xBF, 'B', 'K', 'M'}

const mdlVersion = 2

// SaveModelSignature writes a trained model to w in the current (v2)
// framed format under a typed signature.
func SaveModelSignature(w io.Writer, sig Signature, weights []float32) error {
	return saveModel(w, sig.String(), weights)
}

// SaveModel writes a trained model to w. It is the compatibility
// wrapper over SaveModelSignature for callers holding the signature as
// text: sigText is validated by parsing (empty means "unspecified").
func SaveModel(w io.Writer, sigText string, weights []float32) error {
	if sigText != "" {
		if _, err := ParseSignature(sigText); err != nil {
			return wrapErr(err)
		}
	}
	return saveModel(w, sigText, weights)
}

func saveModel(w io.Writer, sigText string, weights []float32) error {
	if len(weights) == 0 {
		return fmt.Errorf("buckwild: refusing to save an empty model")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(SavedModel{Signature: sigText, Weights: weights}); err != nil {
		return fmt.Errorf("buckwild: encoding model: %w", err)
	}
	p := payload.Bytes()
	var hdr [17]byte
	copy(hdr[:4], mdlMagic[:])
	hdr[4] = mdlVersion
	binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(p))
	binary.BigEndian.PutUint64(hdr[9:17], uint64(len(p)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("buckwild: writing model: %w", err)
	}
	if _, err := w.Write(p); err != nil {
		return fmt.Errorf("buckwild: writing model: %w", err)
	}
	return nil
}

// LoadModel reads a model previously written by SaveModel or
// SaveModelSignature: the framed v2 format, or the bare-gob v1 format
// of earlier releases.
func LoadModel(r io.Reader) (*SavedModel, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("buckwild: model stream truncated")
	}
	if bytes.Equal(head, mdlMagic[:]) {
		return loadModelV2(r)
	}
	// v1: the stream is a bare gob; put the sniffed bytes back.
	return loadModelGob(io.MultiReader(bytes.NewReader(head), r))
}

func loadModelV2(r io.Reader) (*SavedModel, error) {
	var hdr [13]byte // version + crc + length
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("buckwild: model header truncated")
	}
	if hdr[0] != mdlVersion {
		return nil, fmt.Errorf("buckwild: unsupported model format version %d (this build reads up to %d)", hdr[0], mdlVersion)
	}
	sum := binary.BigEndian.Uint32(hdr[1:5])
	n := binary.BigEndian.Uint64(hdr[5:13])
	const maxPayload = 1 << 32
	if n > maxPayload {
		return nil, fmt.Errorf("buckwild: implausible model payload size %d", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, fmt.Errorf("buckwild: model payload truncated")
	}
	if got := crc32.ChecksumIEEE(p); got != sum {
		return nil, fmt.Errorf("buckwild: model CRC mismatch (stored %08x, computed %08x)", sum, got)
	}
	return loadModelGob(bytes.NewReader(p))
}

func loadModelGob(r io.Reader) (*SavedModel, error) {
	var m SavedModel
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("buckwild: decoding model: %w", err)
	}
	if len(m.Weights) == 0 {
		return nil, fmt.Errorf("buckwild: model has no weights")
	}
	if m.Signature != "" {
		if _, err := ParseSignature(m.Signature); err != nil {
			return nil, wrapErr(err)
		}
	}
	return &m, nil
}

// SaveModelFile and LoadModelFile are path-based conveniences.
func SaveModelFile(path, sigText string, weights []float32) error {
	f, err := os.Create(path)
	if err != nil {
		return wrapErr(err)
	}
	defer f.Close()
	if err := SaveModel(f, sigText, weights); err != nil {
		return err
	}
	return wrapErr(f.Close())
}

// LoadModelFile loads a model from a file written by SaveModelFile.
func LoadModelFile(path string) (*SavedModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, wrapErr(err)
	}
	defer f.Close()
	m, err := LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}

// LoadLibSVM reads a LIBSVM-format file into a sparse dataset stored at the
// signature's dataset and index precisions, ready for TrainSparse. Parse
// errors name the file and line.
func LoadLibSVM(path, sigText string) (*SparseDataset, error) {
	sig, err := ParseSignature(orDefault(sigText, "D32fi32M32f"))
	if err != nil {
		return nil, wrapErr(err)
	}
	if !sig.Sparse() {
		return nil, fmt.Errorf("buckwild: signature %v has no index term", sig)
	}
	p, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, wrapErr(err)
	}
	defer f.Close()
	ds, err := dataset.ReadLibSVM(f, dataset.LibSVMConfig{
		P:        p,
		IdxBits:  sig.IndexBits(),
		Rounding: fixed.Unbiased,
		Seed:     1,
		Path:     path,
	})
	return ds, wrapErr(err)
}

// Handle returns the immutable predict handle for a loaded model, the
// type every inference path shares (Model.Predict* for request serving,
// ModelServer.Promote for hot promotion). Unlike the SavedModel it came
// from, a Model cannot be mutated after construction, so the handle is
// safe for any number of concurrent predict calls.
func (m *SavedModel) Handle() (*Model, error) {
	return NewModel(m.Signature, m.Weights)
}

// Predict applies a saved linear model to one example given as
// (index, value) pairs, returning the margin w.x.
//
// Deprecated: use Handle to obtain a *Model and call its PredictSparse —
// the immutable handle is safe for concurrent use and is the one shared
// inference path. This wrapper routes through the same implementation
// and stays bit-identical.
func (m *SavedModel) Predict(idx []int32, vals []float32) (float32, error) {
	return predictSparse(m.Weights, idx, vals)
}

// PredictDense applies a saved linear model to a dense example.
//
// Deprecated: use Handle to obtain a *Model and call its PredictDense —
// the immutable handle is safe for concurrent use and is the one shared
// inference path. This wrapper routes through the same implementation
// and stays bit-identical.
func (m *SavedModel) PredictDense(x []float32) (float32, error) {
	return predictDense(m.Weights, x)
}
