package buckwild

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"buckwild/internal/dataset"
	"buckwild/internal/fixed"
)

// SavedModel is the on-disk representation of a trained model: the
// signature it was trained under and the dequantized weights.
type SavedModel struct {
	Signature string
	Weights   []float32
}

// SaveModel writes a trained model to w in gob encoding.
func SaveModel(w io.Writer, sigText string, weights []float32) error {
	if len(weights) == 0 {
		return fmt.Errorf("buckwild: refusing to save an empty model")
	}
	if sigText != "" {
		if _, err := ParseSignature(sigText); err != nil {
			return err
		}
	}
	return gob.NewEncoder(w).Encode(SavedModel{Signature: sigText, Weights: weights})
}

// LoadModel reads a model previously written by SaveModel.
func LoadModel(r io.Reader) (*SavedModel, error) {
	var m SavedModel
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("buckwild: decoding model: %w", err)
	}
	if len(m.Weights) == 0 {
		return nil, fmt.Errorf("buckwild: model has no weights")
	}
	if m.Signature != "" {
		if _, err := ParseSignature(m.Signature); err != nil {
			return nil, err
		}
	}
	return &m, nil
}

// SaveModelFile and LoadModelFile are path-based conveniences.
func SaveModelFile(path, sigText string, weights []float32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveModel(f, sigText, weights); err != nil {
		return err
	}
	return f.Close()
}

// LoadModelFile loads a model from a file written by SaveModelFile.
func LoadModelFile(path string) (*SavedModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

// LoadLibSVM reads a LIBSVM-format file into a sparse dataset stored at the
// signature's dataset and index precisions, ready for TrainSparse.
func LoadLibSVM(path, sigText string) (*SparseDataset, error) {
	sig, err := ParseSignature(orDefault(sigText, "D32fi32M32f"))
	if err != nil {
		return nil, err
	}
	if !sig.Sparse() {
		return nil, fmt.Errorf("buckwild: signature %v has no index term", sig)
	}
	p, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadLibSVM(f, dataset.LibSVMConfig{
		P:        p,
		IdxBits:  sig.IndexBits(),
		Rounding: fixed.Unbiased,
		Seed:     1,
	})
}

// Predict applies a saved linear model to one example given as
// (index, value) pairs, returning the margin w.x.
func (m *SavedModel) Predict(idx []int32, vals []float32) (float32, error) {
	if len(idx) != len(vals) {
		return 0, fmt.Errorf("buckwild: %d indices, %d values", len(idx), len(vals))
	}
	var s float32
	for k, j := range idx {
		if j < 0 || int(j) >= len(m.Weights) {
			return 0, fmt.Errorf("buckwild: index %d outside model of size %d", j, len(m.Weights))
		}
		s += m.Weights[j] * vals[k]
	}
	return s, nil
}

// PredictDense applies a saved linear model to a dense example.
func (m *SavedModel) PredictDense(x []float32) (float32, error) {
	if len(x) != len(m.Weights) {
		return 0, fmt.Errorf("buckwild: example dim %d, model dim %d", len(x), len(m.Weights))
	}
	var s float32
	for j, v := range x {
		s += m.Weights[j] * v
	}
	return s, nil
}
