package buckwild

import (
	"fmt"

	"buckwild/internal/cluster"
	"buckwild/internal/core"
)

// Dataset is the input to Train: a dense (*DenseDataset) or sparse
// (*SparseDataset) example set. The interface is intentionally small —
// it exists so both dataset types fit one entry point, not as an
// extension surface; Train accepts exactly those two types.
type Dataset interface {
	// Len returns the number of examples.
	Len() int
	// Dim returns the model dimension.
	Dim() int
}

var (
	_ Dataset = (*DenseDataset)(nil)
	_ Dataset = (*SparseDataset)(nil)
)

// Train runs Buckwild! SGD on a dense or sparse dataset — the unified
// entry point over TrainDense and TrainSparse, which remain as thin
// wrappers. Each dataset type trains exactly as its wrapper always has
// (bit-identical results and errors for the same Config and seed).
//
// With Config.Cluster asking for multiple nodes (Nodes >= 2), a dense
// run is routed through the simulated cluster tier instead of the
// shared-memory engine: gradients cross a modeled interconnect at the
// wire precision, and Result.Cluster reports the exact wire bytes.
// Sparse datasets do not support cluster training.
func Train(cfg Config, ds Dataset) (*Result, error) {
	switch d := ds.(type) {
	case *DenseDataset:
		return trainDense(cfg, d)
	case *SparseDataset:
		return trainSparse(cfg, d)
	case nil:
		return nil, fmt.Errorf("buckwild: nil dataset")
	}
	return nil, fmt.Errorf("buckwild: unsupported dataset type %T (use *DenseDataset or *SparseDataset)", ds)
}

// TrainDense runs Buckwild! SGD on a dense dataset. The dataset must be
// stored at the signature's dataset precision (see GenerateDense). It is
// a thin wrapper over Train, kept for compatibility.
//
// Deprecated: use Train, the one entry point for both dataset kinds; it
// trains bit-identically for the same Config and seed.
func TrainDense(cfg Config, ds *DenseDataset) (*Result, error) {
	return Train(cfg, ds)
}

// TrainSparse runs Buckwild! SGD on a sparse dataset. It is a thin
// wrapper over Train, kept for compatibility.
//
// Deprecated: use Train, the one entry point for both dataset kinds; it
// trains bit-identically for the same Config and seed.
func TrainSparse(cfg Config, ds *SparseDataset) (*Result, error) {
	return Train(cfg, ds)
}

func trainDense(cfg Config, ds *DenseDataset) (*Result, error) {
	cc, err := cfg.coreConfig(false, 0)
	if err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("buckwild: empty dataset")
	}
	if ds.X[0].P != cc.D {
		return nil, fmt.Errorf("buckwild: dataset stored at %v but signature wants %v", ds.X[0].P, cc.D)
	}
	if cfg.Cluster.enabled() {
		ccl, err := cfg.clusterConfig(cc)
		if err != nil {
			return nil, err
		}
		res, err := cluster.Train(ccl, ds)
		return res, wrapErr(err)
	}
	res, err := core.TrainDense(cc, ds)
	return res, wrapErr(err)
}

func trainSparse(cfg Config, ds *SparseDataset) (*Result, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("buckwild: empty dataset")
	}
	cc, err := cfg.coreConfig(true, ds.IdxBits)
	if err != nil {
		return nil, err
	}
	if cfg.Cluster.enabled() {
		return nil, fmt.Errorf("buckwild: cluster training supports dense datasets only")
	}
	if ds.Val[0].P != cc.D {
		return nil, fmt.Errorf("buckwild: dataset stored at %v but signature wants %v", ds.Val[0].P, cc.D)
	}
	res, err := core.TrainSparse(cc, ds)
	return res, wrapErr(err)
}
