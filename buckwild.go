// Package buckwild is a Go reproduction of "Understanding and Optimizing
// Asynchronous Low-Precision Stochastic Gradient Descent" (De Sa, Feldman,
// Ré, Olukotun — ISCA 2017).
//
// It provides:
//
//   - the Buckwild! training engine: Hogwild!-style asynchronous SGD over
//     a shared low-precision model, configurable across the full DMGC
//     (Dataset / Model / Gradient / Communication precision) space;
//   - the DMGC signature taxonomy and the Section 4 roofline-style
//     performance model;
//   - a simulated multicore machine (instruction cost model + MESI cache
//     hierarchy with the obstinate-cache and prefetch studies) that stands
//     in for the paper's Xeon and ZSim measurements;
//   - an FPGA design model reproducing the Section 8 study;
//   - synchronous quantized-gradient training with error feedback
//     (TrainSync), LIBSVM input (LoadLibSVM) and model persistence
//     (SaveModelFile / LoadModelFile).
//
// The top-level package is a thin facade over the internal packages; see
// the examples directory for runnable end-to-end programs and DESIGN.md
// for the system inventory.
package buckwild

import (
	"fmt"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/dmgc"
	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
)

// Signature is a DMGC signature (e.g. "D8M8", "D32fi32M32f"); see
// Section 3 of the paper.
type Signature = dmgc.Signature

// ParseSignature parses a signature in the paper's notation.
func ParseSignature(s string) (Signature, error) {
	return dmgc.Parse(s)
}

// PredictThroughput applies the Section 4 performance model: dataset
// throughput in GNPS for a signature at a model size and thread count,
// using the paper's Table 2 base throughputs.
func PredictThroughput(sig Signature, modelSize, threads int) (float64, error) {
	return dmgc.DefaultPerfModel().Throughput(sig, modelSize, threads)
}

// Rounding selects the model-write rounding strategy (Section 5.2).
type Rounding string

// Rounding strategies, in increasing order of hardware efficiency among
// the unbiased ones.
const (
	// Biased is nearest-neighbor rounding: fastest, statistically worst.
	Biased Rounding = "biased"
	// UnbiasedMT is stochastic rounding with a Mersenne-twister draw per
	// write (the slow Boost-based baseline).
	UnbiasedMT Rounding = "unbiased-mt"
	// UnbiasedXorshift is stochastic rounding with vectorized XORSHIFT.
	UnbiasedXorshift Rounding = "unbiased-xorshift"
	// UnbiasedShared reuses each XORSHIFT draw across several writes —
	// the paper's recommended strategy.
	UnbiasedShared Rounding = "unbiased-shared"
)

func (r Rounding) kind() (kernels.QuantKind, error) {
	switch r {
	case "", UnbiasedShared:
		return kernels.QShared, nil
	case Biased:
		return kernels.QBiased, nil
	case UnbiasedMT:
		return kernels.QMersenne, nil
	case UnbiasedXorshift:
		return kernels.QXorshift, nil
	}
	return 0, fmt.Errorf("buckwild: unknown rounding %q", r)
}

// Config configures a training run. The zero value of optional fields
// selects the paper's recommended defaults (hand-optimized kernels,
// shared-randomness unbiased rounding, one thread, one epoch).
type Config struct {
	// Signature sets the precisions, e.g. "D8M8"; the index term must
	// match the dataset for sparse problems. Empty means full precision.
	Signature string
	// Problem is "logistic" (default), "linear" or "svm".
	Problem string
	// Rounding selects the quantization strategy for model writes.
	Rounding Rounding
	// GenericKernels disables the hand-optimized kernel semantics
	// (Section 5.1's compiler-style baseline).
	GenericKernels bool
	// Locked replaces lock-free Hogwild! updates with a mutex, the
	// baseline asynchrony beats.
	Locked  bool
	Threads int
	// MiniBatch is B, examples per model update (Section 5.4).
	MiniBatch int
	StepSize  float32
	StepDecay float32
	Epochs    int
	Seed      uint64
}

// Result re-exports the engine's training result.
type Result = core.Result

// DenseDataset and SparseDataset re-export the dataset types.
type DenseDataset = dataset.DenseSet

// SparseDataset is a coordinate-form sparse dataset.
type SparseDataset = dataset.SparseSet

func (c Config) coreConfig(sparse bool, idxBits uint) (core.Config, error) {
	sigText := c.Signature
	if sigText == "" {
		if sparse {
			sigText = "D32fi32M32f"
		} else {
			sigText = "D32fM32f"
		}
	}
	sig, err := dmgc.Parse(sigText)
	if err != nil {
		return core.Config{}, err
	}
	if sparse != sig.Sparse() {
		return core.Config{}, fmt.Errorf("buckwild: signature %v sparsity does not match the dataset", sig)
	}
	if sparse && sig.IndexBits() != idxBits {
		return core.Config{}, fmt.Errorf("buckwild: signature index precision i%d, dataset stores i%d", sig.IndexBits(), idxBits)
	}
	d, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return core.Config{}, err
	}
	m, err := precOf(sig.ModelBits(), sig.M.Float || !sig.M.Present)
	if err != nil {
		return core.Config{}, err
	}
	var prob core.Problem
	switch c.Problem {
	case "", "logistic":
		prob = core.Logistic
	case "linear":
		prob = core.Linear
	case "svm":
		prob = core.SVM
	default:
		return core.Config{}, fmt.Errorf("buckwild: unknown problem %q", c.Problem)
	}
	kind, err := c.Rounding.kind()
	if err != nil {
		return core.Config{}, err
	}
	variant := kernels.HandOpt
	if c.GenericKernels {
		variant = kernels.Generic
	}
	gradBits := uint(0)
	if sig.G.Present && !sig.G.Float && sig.G.Bits < 32 {
		gradBits = sig.G.Bits
	}
	sharing := core.Racy
	if c.Locked {
		sharing = core.Locked
	}
	if c.Threads <= 1 {
		sharing = core.Sequential
	}
	step := c.StepSize
	if step == 0 {
		step = 0.1
	}
	return core.Config{
		Problem:     prob,
		D:           d,
		M:           m,
		Variant:     variant,
		Quant:       kind,
		QuantPeriod: 8,
		GradBits:    gradBits,
		Threads:     c.Threads,
		MiniBatch:   c.MiniBatch,
		StepSize:    step,
		StepDecay:   c.StepDecay,
		Epochs:      c.Epochs,
		Sharing:     sharing,
		Seed:        c.Seed,
	}, nil
}

// precOf maps a signature term to a storage precision.
func precOf(bits uint, isFloat bool) (kernels.Prec, error) {
	if isFloat {
		if bits != 32 {
			return 0, fmt.Errorf("buckwild: only 32-bit float storage is supported, got %df", bits)
		}
		return kernels.F32, nil
	}
	switch bits {
	case 4:
		return kernels.I4, nil
	case 8:
		return kernels.I8, nil
	case 16:
		return kernels.I16, nil
	case 32:
		return kernels.F32, nil
	}
	return 0, fmt.Errorf("buckwild: unsupported precision %d (use 4, 8, 16 or 32f)", bits)
}

// TrainDense runs Buckwild! SGD on a dense dataset. The dataset must be
// stored at the signature's dataset precision (see GenerateDense).
func TrainDense(cfg Config, ds *DenseDataset) (*Result, error) {
	cc, err := cfg.coreConfig(false, 0)
	if err != nil {
		return nil, err
	}
	return core.TrainDense(cc, ds)
}

// TrainSparse runs Buckwild! SGD on a sparse dataset.
func TrainSparse(cfg Config, ds *SparseDataset) (*Result, error) {
	cc, err := cfg.coreConfig(true, ds.IdxBits)
	if err != nil {
		return nil, err
	}
	return core.TrainSparse(cc, ds)
}

// GenerateDense samples a dense logistic-regression dataset from the
// paper's generative model, quantized at the signature's dataset
// precision.
func GenerateDense(sigText string, n, m int, seed uint64) (*DenseDataset, error) {
	sig, err := dmgc.Parse(orDefault(sigText, "D32fM32f"))
	if err != nil {
		return nil, err
	}
	p, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return nil, err
	}
	return dataset.GenDense(dataset.DenseConfig{
		N: n, M: m, P: p, Rounding: fixed.Unbiased, Seed: seed,
	})
}

// GenerateSparse samples a sparse dataset at the signature's dataset and
// index precisions with the given density (the paper uses 0.03).
func GenerateSparse(sigText string, n, m int, density float64, seed uint64) (*SparseDataset, error) {
	sig, err := dmgc.Parse(orDefault(sigText, "D32fi32M32f"))
	if err != nil {
		return nil, err
	}
	if !sig.Sparse() {
		return nil, fmt.Errorf("buckwild: signature %v has no index term", sig)
	}
	p, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return nil, err
	}
	return dataset.GenSparse(dataset.SparseConfig{
		N: n, M: m, Density: density, P: p, IdxBits: sig.IndexBits(),
		Rounding: fixed.Unbiased, Seed: seed,
	})
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// MachineResult re-exports the simulated-machine result.
type MachineResult = machine.Result

// SimulateThroughput runs the simulated Xeon on a dense SGD workload with
// the given signature and returns its predicted hardware efficiency. It is
// the programmatic interface to the Table 2 / Figure 2 experiments;
// cmd/experiments exposes the full sweeps.
func SimulateThroughput(sigText string, modelSize, threads int) (*MachineResult, error) {
	sig, err := dmgc.Parse(sigText)
	if err != nil {
		return nil, err
	}
	d, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return nil, err
	}
	m, err := precOf(sig.ModelBits(), sig.M.Float || !sig.M.Present)
	if err != nil {
		return nil, err
	}
	w := machine.Workload{
		Sparse:      sig.Sparse(),
		D:           d,
		M:           m,
		IdxBits:     sig.IndexBits(),
		Variant:     kernels.HandOpt,
		Quant:       kernels.QShared,
		QuantPeriod: 8,
		ModelSize:   modelSize,
		Density:     0.03,
		Threads:     threads,
		Prefetch:    true,
		Seed:        1,
	}
	if w.D == kernels.I4 || w.M == kernels.I4 {
		w.Variant = kernels.NewInsn
	}
	return machine.Simulate(machine.Xeon(), w)
}
