// Package buckwild is a Go reproduction of "Understanding and Optimizing
// Asynchronous Low-Precision Stochastic Gradient Descent" (De Sa, Feldman,
// Ré, Olukotun — ISCA 2017).
//
// It provides:
//
//   - the Buckwild! training engine: Hogwild!-style asynchronous SGD over
//     a shared low-precision model, configurable across the full DMGC
//     (Dataset / Model / Gradient / Communication precision) space;
//   - the DMGC signature taxonomy and the Section 4 roofline-style
//     performance model;
//   - a simulated multicore machine (instruction cost model + MESI cache
//     hierarchy with the obstinate-cache and prefetch studies) that stands
//     in for the paper's Xeon and ZSim measurements;
//   - an FPGA design model reproducing the Section 8 study;
//   - synchronous quantized-gradient training with error feedback
//     (TrainSync), LIBSVM input (LoadLibSVM) and model persistence
//     (SaveModelFile / LoadModelFile);
//   - a simulated multi-node cluster tier (Config.Cluster): a parameter
//     server and a pipelined all-reduce over a latency/bandwidth-modeled
//     interconnect, with gradients wire-quantized at the communication
//     precision and every wire byte counted exactly (Result.Cluster);
//   - run-level observability: training hooks, per-run counters and a
//     sampled write–read staleness histogram (Hooks, RunStats), collected
//     only when requested and free otherwise.
//
// All configuration errors carry the "buckwild:" prefix and are reported
// by Config.Validate before any work starts.
//
// The top-level package is a thin facade over the internal packages; see
// the examples directory for runnable end-to-end programs and DESIGN.md
// for the system inventory.
package buckwild

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/dmgc"
	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// Signature is a DMGC signature (e.g. "D8M8", "D32fi32M32f"); see
// Section 3 of the paper.
type Signature = dmgc.Signature

// ParseSignature parses a signature in the paper's notation.
func ParseSignature(s string) (Signature, error) {
	return dmgc.Parse(s)
}

// PredictThroughput applies the Section 4 performance model: dataset
// throughput in GNPS for a signature at a model size and thread count,
// using the paper's Table 2 base throughputs.
func PredictThroughput(sig Signature, modelSize, threads int) (float64, error) {
	return dmgc.DefaultPerfModel().Throughput(sig, modelSize, threads)
}

// Problem selects the objective being optimized. The zero value means
// Logistic. Untyped string literals ("logistic") still assign to it, so
// code written against the old string-typed field keeps compiling.
type Problem string

// The supported objectives.
const (
	// Logistic is binary logistic regression (the paper's main task).
	Logistic Problem = "logistic"
	// Linear is least-squares linear regression.
	Linear Problem = "linear"
	// SVM is a hinge-loss support vector machine.
	SVM Problem = "svm"
)

// String names the problem, resolving the zero value to its default.
func (p Problem) String() string {
	if p == "" {
		return string(Logistic)
	}
	return string(p)
}

// Valid reports whether p names a supported objective.
func (p Problem) Valid() bool {
	switch p {
	case "", Logistic, Linear, SVM:
		return true
	}
	return false
}

// core maps the facade problem onto the engine's enum.
func (p Problem) core() (core.Problem, error) {
	switch p {
	case "", Logistic:
		return core.Logistic, nil
	case Linear:
		return core.Linear, nil
	case SVM:
		return core.SVM, nil
	}
	return 0, fmt.Errorf("buckwild: unknown problem %q", string(p))
}

// Rounding selects the model-write rounding strategy (Section 5.2).
type Rounding string

// Rounding strategies, in increasing order of hardware efficiency among
// the unbiased ones.
const (
	// Biased is nearest-neighbor rounding: fastest, statistically worst.
	Biased Rounding = "biased"
	// UnbiasedMT is stochastic rounding with a Mersenne-twister draw per
	// write (the slow Boost-based baseline).
	UnbiasedMT Rounding = "unbiased-mt"
	// UnbiasedXorshift is stochastic rounding with vectorized XORSHIFT.
	UnbiasedXorshift Rounding = "unbiased-xorshift"
	// UnbiasedShared reuses each XORSHIFT draw across several writes —
	// the paper's recommended strategy.
	UnbiasedShared Rounding = "unbiased-shared"
	// UnbiasedHardware models the Section 6.1 QAXPY instructions rounding
	// in hardware: statistically like UnbiasedXorshift, but the rounding
	// costs no instructions. Only the simulated machine distinguishes it.
	UnbiasedHardware Rounding = "unbiased-hardware"
)

// Valid reports whether r names a supported strategy.
func (r Rounding) Valid() bool {
	_, err := r.kind()
	return err == nil
}

func (r Rounding) kind() (kernels.QuantKind, error) {
	switch r {
	case "", UnbiasedShared:
		return kernels.QShared, nil
	case Biased:
		return kernels.QBiased, nil
	case UnbiasedMT:
		return kernels.QMersenne, nil
	case UnbiasedXorshift:
		return kernels.QXorshift, nil
	case UnbiasedHardware:
		return kernels.QHardware, nil
	}
	return 0, fmt.Errorf("buckwild: unknown rounding %q", r)
}

// Observability re-exports: installing Hooks in a Config (or setting
// CollectStats) makes the engine report progress and fill Result.Stats.
type (
	// Hooks receives run-level callbacks; see the obs package for the
	// concurrency contract. Embed NopHooks to implement a subset.
	Hooks = obs.Hooks
	// NopHooks is a Hooks implementation that ignores every callback.
	NopHooks = obs.NopHooks
	// EpochInfo, StepInfo and WorkerInfo are the callback payloads.
	EpochInfo  = obs.EpochInfo
	StepInfo   = obs.StepInfo
	WorkerInfo = obs.WorkerInfo
	// RunStats is the counter snapshot in Result.Stats: steps, model
	// writes by rounding kind, mutex waits, mini-batch flushes, and the
	// sampled write–read staleness histogram.
	RunStats = obs.RunStats
	// Tracer records coarse phase spans (run attempts, epochs,
	// checkpoints, simulation phases) into a bounded in-memory ring and
	// exports them as Chrome trace_event JSON (chrome://tracing,
	// Perfetto). Create one with NewTracer and install it in a Config or
	// SimOptions.
	Tracer = obs.Tracer
	// Series records the windowed training time-series (per-window loss,
	// throughput, gradient magnitude, mutex waits and a staleness
	// sub-histogram) under a fixed memory budget. Create one with
	// NewSeries and install it in Config.TimeSeries.
	Series = obs.Series
	// SeriesSnapshot and SeriesWindow are the exportable time-series
	// forms surfaced on Result.Series.
	SeriesSnapshot = obs.SeriesSnapshot
	SeriesWindow   = obs.SeriesWindow
	// NumStats is the numerical-health snapshot surfaced on
	// Result.NumStats (and Result.Stats.NumHealth) when Config.NumHealth
	// is set: saturation counts per clamp site, rounding-bias
	// accumulators, gradient underflows and the final weight
	// distribution.
	NumStats = obs.NumStats
	// WeightStats and RoundingBias are NumStats components.
	WeightStats  = obs.WeightStats
	RoundingBias = obs.RoundingBias
	// HealthInfo is the per-epoch payload delivered to HealthHooks.
	HealthInfo = obs.HealthInfo
	// HealthHooks is the optional Hooks extension receiving per-epoch
	// numerical-health snapshots.
	HealthHooks = obs.HealthHooks
	// HealthWatchdog wraps a Hooks chain and cancels the run's context
	// with a *DivergenceError when the loss goes non-finite or the
	// saturation rate / rounding-bias drift cross its thresholds.
	HealthWatchdog = obs.HealthWatchdog
	// DivergenceInfo describes why a HealthWatchdog fired; DivergenceHooks
	// is the optional extension receiving it.
	DivergenceInfo  = obs.DivergenceInfo
	DivergenceHooks = obs.DivergenceHooks
	// DivergenceError is the context cause installed by a fired
	// HealthWatchdog; errors.Is(err, ErrDivergence) matches it.
	DivergenceError = obs.DivergenceError
	// FlightRecorder is the always-on post-mortem ring: a bounded,
	// lock-free buffer of recent structured events (promotions, retries,
	// faults, watchdog trips, slow requests, epoch completions) dumped as
	// JSON when a run dies or on demand. Create one with
	// NewFlightRecorder and install it in Config.Flight or
	// ServeConfig.Flight. A nil *FlightRecorder records nothing at no
	// cost.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent and FlightSnapshot are the recorder's exportable forms.
	FlightEvent    = obs.FlightEvent
	FlightSnapshot = obs.FlightSnapshot
	// ClusterMetrics keeps live, scrape-ready per-node counters of a
	// running cluster simulation; install one in
	// Config.Cluster.LiveMetrics and add it to a /metrics exposition (it
	// is an http.Handler and a PromWriter).
	ClusterMetrics = obs.ClusterMetrics
	// Bundler writes anomaly-triggered debug bundles: one tar.gz with the
	// flight ring, trace window, series, pprof profiles, stats and
	// resolved config, written when the health watchdog trips, the stall
	// watchdog fires, retries are exhausted or a serve request crosses
	// the slow threshold. Create one with NewBundler and install it in
	// Config.Bundle or ServeConfig.Bundle. A nil *Bundler is inert.
	Bundler = obs.Bundler
	// BundleConfig configures a Bundler; BundleManifest and BundleInfo
	// are the bundle's self-description and parsed form (ReadBundle).
	BundleConfig   = obs.BundleConfig
	BundleManifest = obs.BundleManifest
	BundleInfo     = obs.BundleInfo
	// Profiler captures CPU/heap/goroutine/mutex pprof profiles on a
	// cadence into a bounded on-disk ring; ProfileConfig configures it.
	// Create one with NewProfiler. A nil *Profiler is inert.
	Profiler      = obs.Profiler
	ProfileConfig = obs.ProfileConfig
	// Dash is the dependency-free live HTML dashboard (/debug/dash plus
	// an SSE feed); DashConfig wires its data sources. Create one with
	// NewDash and install it in ServeConfig.Dash, or mount it on any mux
	// with Dash.Register.
	Dash       = obs.Dash
	DashConfig = obs.DashConfig
)

// ErrDivergence matches (via errors.Is) the error a run returns after a
// HealthWatchdog cancelled it.
var ErrDivergence = obs.ErrDivergence

// NewTracer returns a trace-span recorder keeping at most capacity spans
// (<= 0 selects the default, obs.DefaultTraceCapacity). A nil *Tracer is
// valid everywhere one is accepted and records nothing at no cost.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewSeries returns a windowed time-series recorder keeping at most
// budget windows (<= 0 selects the default, obs.DefaultSeriesBudget).
// Runs of any length fit the budget: when it fills, adjacent windows are
// merged pairwise and the per-window epoch stride doubles.
func NewSeries(budget int) *Series { return obs.NewSeries(budget) }

// NewFlightRecorder returns a post-mortem event ring keeping the most
// recent capacity events (<= 0 selects obs.DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	return obs.NewFlightRecorder(capacity)
}

// NewBundler returns a debug-bundle writer putting its tar.gz bundles in
// cfg.Dir (created if missing). Wire its triggers by installing it in
// Config.Bundle, ServeConfig.Bundle or a HealthWatchdog's Bundle field.
func NewBundler(cfg BundleConfig) (*Bundler, error) {
	b, err := obs.NewBundler(cfg)
	return b, wrapErr(err)
}

// NewProfiler returns a continuous profiler writing its pprof ring into
// cfg.Dir (created if missing). Call Start to begin the background
// cadence and Stop to end it; CaptureNow works without Start.
func NewProfiler(cfg ProfileConfig) (*Profiler, error) {
	p, err := obs.NewProfiler(cfg)
	return p, wrapErr(err)
}

// NewDash returns the live dashboard handler over the given sources.
func NewDash(cfg DashConfig) *Dash { return obs.NewDash(cfg) }

// ReadBundle parses a debug bundle stream (as written by a Bundler) into
// its manifest, flight and series sections and raw entries.
func ReadBundle(r io.Reader) (*BundleInfo, error) {
	info, err := obs.ReadBundle(r)
	return info, wrapErr(err)
}

// NewLogger builds a structured logger writing to w: format is "text" or
// "json", level one of "debug", "info", "warn", "error" (both
// case-insensitive; empty selects text/info). Install it in
// Config.Logger or ServeConfig.Logger; a nil *slog.Logger is valid
// everywhere one is accepted and logs nothing.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	l, err := obs.NewLogger(w, format, level)
	return l, wrapErr(err)
}

// Config configures a training run. The zero value of optional fields
// selects the paper's recommended defaults (hand-optimized kernels,
// shared-randomness unbiased rounding, one thread, one epoch).
type Config struct {
	// Signature sets the precisions, e.g. "D8M8"; the index term must
	// match the dataset for sparse problems. Empty means full precision.
	Signature string
	// Problem selects the objective (Logistic, Linear, SVM); the zero
	// value is Logistic.
	Problem Problem
	// Rounding selects the quantization strategy for model writes.
	Rounding Rounding
	// GenericKernels disables the hand-optimized kernel semantics
	// (Section 5.1's compiler-style baseline).
	GenericKernels bool
	// Locked replaces lock-free Hogwild! updates with a mutex, the
	// baseline asynchrony beats.
	Locked  bool
	Threads int
	// MiniBatch is B, examples per model update (Section 5.4).
	MiniBatch int
	StepSize  float32
	StepDecay float32
	Epochs    int
	Seed      uint64

	// Hooks, when non-nil, receives per-epoch, sampled per-step and
	// per-worker callbacks during training, and makes the engine fill
	// Result.Stats. When unset the engine runs the bare algorithm — the
	// only residual cost is one nil check per step.
	Hooks Hooks
	// CollectStats requests Result.Stats without hooks.
	//
	// Deprecated: set Hooks instead — NopHooks{} alone makes the engine
	// fill Result.Stats.
	CollectStats bool
	// StepSample is the per-step sampling period for hooks and the
	// staleness histogram; 0 means the default (see obs.DefaultStepSample),
	// 1 samples every step.
	StepSample int
	// Tracer, when non-nil, records the run's coarse phases (the run,
	// each epoch) as trace spans; export them with Tracer.WriteTrace.
	// Nil traces nothing at no cost.
	Tracer *Tracer
	// TimeSeries, when non-nil, records the windowed training
	// time-series surfaced on Result.Series. Nil records nothing at no
	// cost.
	TimeSeries *Series
	// NumHealth enables numerical-health collection: saturation events
	// per clamp site, signed rounding-bias accumulators, gradient
	// underflows and a per-epoch weight-distribution snapshot, surfaced
	// on Result.NumStats. Off (the default) it costs one nil check per
	// kernel call.
	NumHealth bool
	// Logger, when non-nil, receives structured operational logs from the
	// run (cluster epoch completions and, through RunConfig, supervisor
	// retries, checkpoints and faults). Build one with NewLogger; nil is
	// silent at no cost.
	Logger *slog.Logger
	// Flight, when non-nil, records the run's notable events (cluster
	// epochs, watchdog trips, supervisor retries) into the post-mortem
	// ring for dumping after a failure. Nil records nothing at no cost.
	Flight *FlightRecorder
	// Bundle, when non-nil, gets a debug bundle triggered on supervised-
	// run anomalies (stall watchdog, retry exhaustion); point a
	// HealthWatchdog's Bundle field at the same Bundler to cover
	// divergence trips too. Nil writes nothing at no cost.
	Bundle *Bundler

	// Context, when non-nil, bounds the run: cancellation or deadline
	// expiry stops training well within one epoch and the entry point
	// returns the context's cause (context.Canceled,
	// context.DeadlineExceeded, or a custom cause) wrapped with the
	// facade's "buckwild:" prefix — errors.Is still matches. Nil means
	// the run is unbounded, at no per-step cost.
	Context context.Context

	// Cluster extends the run across a simulated multi-node cluster. The
	// zero value keeps single-machine training exactly as before; with
	// Nodes >= 2, dense runs go through the cluster tier (see
	// ClusterConfig) and Result.Cluster reports the exact wire bytes.
	Cluster ClusterConfig
}

// Validate checks the configuration without running anything. Every
// training entry point calls it first, so all bad inputs fail fast with
// a "buckwild:"-prefixed error; callers building configs from user input
// can call it directly for early feedback.
func (c Config) Validate() error {
	if c.Signature != "" {
		if _, err := dmgc.Parse(c.Signature); err != nil {
			return wrapErr(err)
		}
	}
	if !c.Problem.Valid() {
		return fmt.Errorf("buckwild: unknown problem %q", string(c.Problem))
	}
	if _, err := c.Rounding.kind(); err != nil {
		return err
	}
	if c.Threads < 0 {
		return fmt.Errorf("buckwild: negative thread count %d", c.Threads)
	}
	if c.MiniBatch < 0 {
		return fmt.Errorf("buckwild: negative mini-batch size %d", c.MiniBatch)
	}
	if c.Epochs < 0 {
		return fmt.Errorf("buckwild: negative epoch count %d", c.Epochs)
	}
	if c.StepSize < 0 {
		return fmt.Errorf("buckwild: negative step size %v", c.StepSize)
	}
	if c.StepDecay < 0 {
		return fmt.Errorf("buckwild: negative step decay %v", c.StepDecay)
	}
	if c.StepSample < 0 {
		return fmt.Errorf("buckwild: negative step-sample period %d", c.StepSample)
	}
	return c.Cluster.Validate()
}

// internalPrefixes are the error prefixes of the internal packages; the
// facade rewrites them to its own uniform prefix.
var internalPrefixes = []string{
	"core: ", "dataset: ", "run: ", "dmgc: ", "machine: ",
	"kernels: ", "fixed: ", "obs: ", "sweep: ", "cluster: ", "serve: ",
}

// wrapErr gives every error that crosses the facade the uniform
// "buckwild:" prefix. Internal-package prefixes are rewritten rather
// than stacked, and the original error stays in the chain, so
// errors.Is(err, context.Canceled) and friends keep working.
func wrapErr(err error) error {
	if err == nil || strings.HasPrefix(err.Error(), "buckwild:") {
		return err
	}
	msg := err.Error()
	for _, p := range internalPrefixes {
		if strings.HasPrefix(msg, p) {
			return &facadeError{msg: "buckwild: " + strings.TrimPrefix(msg, p), err: err}
		}
	}
	return fmt.Errorf("buckwild: %w", err)
}

// facadeError rewrites an internal error's prefix while keeping the
// original in the Unwrap chain.
type facadeError struct {
	msg string
	err error
}

func (e *facadeError) Error() string { return e.msg }
func (e *facadeError) Unwrap() error { return e.err }

// Result re-exports the engine's training result.
type Result = core.Result

// DenseDataset and SparseDataset re-export the dataset types.
type DenseDataset = dataset.DenseSet

// SparseDataset is a coordinate-form sparse dataset.
type SparseDataset = dataset.SparseSet

func (c Config) observer() *obs.Observer {
	// Only the cluster tier has flight-recorder and live-metric call
	// sites; on the shared-memory engine those fields alone must not
	// switch the per-step counters on (a non-nil Observer does).
	flight, live := c.Flight, c.Cluster.LiveMetrics
	if !c.Cluster.enabled() {
		flight, live = nil, nil
	}
	if c.Hooks == nil && !c.CollectStats && c.Tracer == nil && c.TimeSeries == nil &&
		!c.NumHealth && flight == nil && live == nil {
		return nil
	}
	return &obs.Observer{
		Hooks: c.Hooks, StepSample: c.StepSample, Tracer: c.Tracer,
		Series: c.TimeSeries, NumHealth: c.NumHealth,
		Flight: flight, ClusterLive: live,
	}
}

func (c Config) coreConfig(sparse bool, idxBits uint) (core.Config, error) {
	if err := c.Validate(); err != nil {
		return core.Config{}, err
	}
	sigText := c.Signature
	if sigText == "" {
		if sparse {
			sigText = "D32fi32M32f"
		} else {
			sigText = "D32fM32f"
		}
	}
	sig, err := dmgc.Parse(sigText)
	if err != nil {
		return core.Config{}, wrapErr(err)
	}
	if sparse != sig.Sparse() {
		return core.Config{}, fmt.Errorf("buckwild: signature %v sparsity does not match the dataset", sig)
	}
	if sparse && sig.IndexBits() != idxBits {
		return core.Config{}, fmt.Errorf("buckwild: signature index precision i%d, dataset stores i%d", sig.IndexBits(), idxBits)
	}
	d, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return core.Config{}, err
	}
	m, err := precOf(sig.ModelBits(), sig.M.Float || !sig.M.Present)
	if err != nil {
		return core.Config{}, err
	}
	prob, err := c.Problem.core()
	if err != nil {
		return core.Config{}, err
	}
	kind, err := c.Rounding.kind()
	if err != nil {
		return core.Config{}, err
	}
	variant := kernels.HandOpt
	if c.GenericKernels {
		variant = kernels.Generic
	}
	gradBits := uint(0)
	if sig.G.Present && !sig.G.Float && sig.G.Bits < 32 {
		gradBits = sig.G.Bits
	}
	sharing := core.Racy
	if c.Locked {
		sharing = core.Locked
	}
	if c.Threads <= 1 {
		sharing = core.Sequential
	}
	step := c.StepSize
	if step == 0 {
		step = 0.1
	}
	return core.Config{
		Problem:     prob,
		D:           d,
		M:           m,
		Variant:     variant,
		Quant:       kind,
		QuantPeriod: 8,
		GradBits:    gradBits,
		Threads:     c.Threads,
		MiniBatch:   c.MiniBatch,
		StepSize:    step,
		StepDecay:   c.StepDecay,
		Epochs:      c.Epochs,
		Sharing:     sharing,
		Seed:        c.Seed,
		Observer:    c.observer(),
		Ctx:         c.Context,
	}, nil
}

// precOf maps a signature term to a storage precision.
func precOf(bits uint, isFloat bool) (kernels.Prec, error) {
	if isFloat {
		if bits != 32 {
			return 0, fmt.Errorf("buckwild: only 32-bit float storage is supported, got %df", bits)
		}
		return kernels.F32, nil
	}
	switch bits {
	case 4:
		return kernels.I4, nil
	case 8:
		return kernels.I8, nil
	case 16:
		return kernels.I16, nil
	case 32:
		return kernels.F32, nil
	}
	return 0, fmt.Errorf("buckwild: unsupported precision %d (use 4, 8, 16 or 32f)", bits)
}

// GenerateDense samples a dense logistic-regression dataset from the
// paper's generative model, quantized at the signature's dataset
// precision.
func GenerateDense(sigText string, n, m int, seed uint64) (*DenseDataset, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("buckwild: dataset dimensions must be positive (n=%d, m=%d)", n, m)
	}
	sig, err := dmgc.Parse(orDefault(sigText, "D32fM32f"))
	if err != nil {
		return nil, wrapErr(err)
	}
	p, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.GenDense(dataset.DenseConfig{
		N: n, M: m, P: p, Rounding: fixed.Unbiased, Seed: seed,
	})
	return ds, wrapErr(err)
}

// GenerateSparse samples a sparse dataset at the signature's dataset and
// index precisions with the given density (the paper uses 0.03).
func GenerateSparse(sigText string, n, m int, density float64, seed uint64) (*SparseDataset, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("buckwild: dataset dimensions must be positive (n=%d, m=%d)", n, m)
	}
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("buckwild: density %v out of (0, 1]", density)
	}
	sig, err := dmgc.Parse(orDefault(sigText, "D32fi32M32f"))
	if err != nil {
		return nil, wrapErr(err)
	}
	if !sig.Sparse() {
		return nil, fmt.Errorf("buckwild: signature %v has no index term", sig)
	}
	p, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.GenSparse(dataset.SparseConfig{
		N: n, M: m, Density: density, P: p, IdxBits: sig.IndexBits(),
		Rounding: fixed.Unbiased, Seed: seed,
	})
	return ds, wrapErr(err)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
