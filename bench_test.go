package buckwild

// Benchmarks, one per table and figure of the paper's evaluation (plus the
// ablations called out in DESIGN.md). Two kinds of measurement appear:
//
//   - host benchmarks exercise the real Go implementations (kernels,
//     quantizers, PRNGs, training epochs, the CNN) so `go test -bench`
//     reports genuine relative costs on the machine running the tests;
//   - simulator benchmarks time the machine/cache/FPGA models that
//     regenerate the paper's hardware-efficiency numbers.
//
// The experiment outputs themselves (the tables/series matching the paper)
// come from `go run ./cmd/experiments all`; see EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"buckwild/internal/cache"
	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/dmgc"
	"buckwild/internal/fixed"
	"buckwild/internal/fpga"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
	"buckwild/internal/nn"
	"buckwild/internal/prng"
	"buckwild/internal/rff"
	"buckwild/internal/simd"
)

// ---- Table 1 ----

func BenchmarkTable1Classify(b *testing.B) {
	sigs := []string{"D8M8", "D32fi32M32f", "D8M16G32C32", "G10", "C1s"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range sigs {
			if _, err := dmgc.Parse(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Table 2 ----

func BenchmarkTable2BaseThroughput(b *testing.B) {
	for _, name := range []string{"D8M8", "D16M16", "D32fM32f"} {
		b.Run(name, func(b *testing.B) {
			sig := dmgc.MustParse(name)
			for i := 0; i < b.N; i++ {
				r, err := SimulateThroughput(sig.String(), 1<<16, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.GNPS, "sim-GNPS")
			}
		})
	}
}

// ---- Figure 2 ----

func BenchmarkFig2ModelSizeSweep(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := SimulateThroughput("D8M8", n, 18)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.GNPS, "sim-GNPS")
			}
		})
	}
}

// ---- Figure 3 ----

func BenchmarkFig3ModelValidation(b *testing.B) {
	pm := dmgc.DefaultPerfModel()
	sig := dmgc.MustParse("D8M8")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1 << 8, 1 << 14, 1 << 20} {
			for _, t := range []int{1, 4, 18} {
				if _, err := pm.Throughput(sig, n, t); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// ---- Figure 4: kernel variants on the host ----

func benchDenseStep(b *testing.B, d, m kernels.Prec, v kernels.Variant) {
	const n = 4096
	var q *kernels.Quantizer
	if m != kernels.F32 {
		q = kernels.MustQuantizer(m, kernels.QShared, 8, 1)
	}
	k := kernels.MustDense(d, m, v, q)
	x := kernels.NewVec(d, n)
	w := kernels.NewVec(m, n)
	g := prng.NewXorshift32(3)
	for i := 0; i < n; i++ {
		if d == kernels.F32 {
			x.F32[i] = prng.Float32(g) - 0.5
		} else {
			x.SetRaw(i, int32(int8(g.Uint32())))
		}
	}
	b.SetBytes(int64(kernels.DenseStepBytes(d, n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dot := k.Dot(x, w)
		k.Axpy(dot*1e-4+1e-3, x, w)
	}
}

func BenchmarkFig4aHandOptVsGeneric(b *testing.B) {
	for _, c := range []struct {
		name string
		d, m kernels.Prec
		v    kernels.Variant
	}{
		{"D8M8/generic", kernels.I8, kernels.I8, kernels.Generic},
		{"D8M8/handopt", kernels.I8, kernels.I8, kernels.HandOpt},
		{"D16M16/generic", kernels.I16, kernels.I16, kernels.Generic},
		{"D16M16/handopt", kernels.I16, kernels.I16, kernels.HandOpt},
		{"D32fM32f/handopt", kernels.F32, kernels.F32, kernels.HandOpt},
	} {
		b.Run(c.name, func(b *testing.B) { benchDenseStep(b, c.d, c.m, c.v) })
	}
}

// ---- Figure 5a: rounding strategies (host quantizer throughput) ----

func BenchmarkFig5aRoundingQuality(b *testing.B) {
	for _, kind := range []kernels.QuantKind{
		kernels.QBiased, kernels.QMersenne, kernels.QXorshift, kernels.QShared,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			q := kernels.MustQuantizer(kernels.I8, kind, 8, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Quantize(0.1234)
			}
		})
	}
}

// ---- Figure 5b: raw PRNG throughput ----

func BenchmarkFig5bPRNGThroughput(b *testing.B) {
	b.Run("xorshift128", func(b *testing.B) {
		g := prng.NewXorshift128(1)
		for i := 0; i < b.N; i++ {
			g.Uint32()
		}
	})
	b.Run("xorshift-batch", func(b *testing.B) {
		g := prng.NewBatch(1)
		for i := 0; i < b.N; i++ {
			g.Uint32()
		}
	})
	b.Run("mt19937", func(b *testing.B) {
		g := prng.NewMT19937(1)
		for i := 0; i < b.N; i++ {
			g.Uint32()
		}
	})
}

// ---- Figure 5c: 4-bit vs 8-bit compute streams ----

func BenchmarkFig5c4Bit(b *testing.B) {
	cost := simd.Haswell()
	q8 := kernels.MustQuantizer(kernels.I8, kernels.QShared, 8, 1)
	q4 := kernels.MustQuantizer(kernels.I4, kernels.QShared, 8, 1)
	k8 := kernels.MustDense(kernels.I8, kernels.I8, kernels.HandOpt, q8)
	k4 := kernels.MustDense(kernels.I4, kernels.I4, kernels.NewInsn, q4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c8 := k8.StepStream(1 << 16).Cycles(cost)
		c4 := k4.StepStream(1 << 16).Cycles(cost)
		b.ReportMetric(c8/c4, "speedup-4bit")
	}
}

// ---- Figure 6a/6b: prefetcher in the cache simulator ----

func BenchmarkFig6Prefetch(b *testing.B) {
	for _, pf := range []bool{true, false} {
		b.Run(fmt.Sprintf("prefetch=%v", pf), func(b *testing.B) {
			cfg := cache.XeonConfig()
			cfg.Cores = 1
			cfg.Prefetch = pf
			h, err := cache.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Access(0, uint64(i)*64, false, false)
			}
		})
	}
}

// ---- Figure 6c: obstinate cache ----

func BenchmarkFig6cObstinate(b *testing.B) {
	for _, q := range []float64{0, 0.5, 0.95} {
		b.Run(fmt.Sprintf("q=%v", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := machine.Simulate(machine.Xeon(), machine.Workload{
					D: kernels.I8, M: kernels.I8,
					Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
					ModelSize: 1 << 10, Threads: 18, Prefetch: true,
					Obstinacy: q, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.GNPS, "sim-GNPS")
			}
		})
	}
}

// ---- Figure 6d/6e: mini-batching (host epoch) ----

func BenchmarkFig6dMiniBatch(b *testing.B) {
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 256, M: 512, P: kernels.I8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("B=%d", batch), func(b *testing.B) {
			cfg := core.Config{
				Problem: core.Logistic, D: kernels.I8, M: kernels.I8,
				Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
				Threads: 1, MiniBatch: batch, StepSize: 0.02, Epochs: 1,
				Sharing: core.Sequential, Seed: 2,
			}
			b.SetBytes(int64(ds.Len() * ds.N))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TrainDense(cfg, ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 6f: obstinate training (host) ----

func BenchmarkFig6fObstinateTraining(b *testing.B) {
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 128, M: 256, P: kernels.I8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []float64{0, 0.95} {
		b.Run(fmt.Sprintf("q=%v", q), func(b *testing.B) {
			cfg := core.Config{
				Problem: core.Logistic, D: kernels.I8, M: kernels.I8,
				Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
				Threads: 2, StepSize: 0.05, Epochs: 1,
				Sharing: core.Racy, ObstinateQ: q, Seed: 2,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TrainDense(cfg, ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 7a: convolution layer (host forward pass) ----

func BenchmarkFig7aConvLayer(b *testing.B) {
	digits, err := dataset.GenDigits(dataset.DigitsConfig{W: 24, H: 24, Classes: 2, Train: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, bits := range []uint{32, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var q nn.QuantSpec
			if bits == 32 {
				q = nn.FullPrecision()
			} else {
				q, err = nn.NewQuantSpec(bits, bits, fixed.Unbiased, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			net, err := nn.NewLeNet(nn.LeNetConfig{W: 24, H: 24, Classes: 2, Quant: q, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Predict(digits.Images[i%len(digits.Images)])
			}
		})
	}
}

// ---- Figure 7b: quantized CNN training epoch ----

func BenchmarkFig7bLeNetEpoch(b *testing.B) {
	d, err := dataset.GenDigits(dataset.DigitsConfig{W: 12, H: 12, Classes: 4, Train: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	train, test := d.Split(0.9)
	q, err := nn.NewQuantSpec(8, 8, fixed.Unbiased, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := nn.NewLeNet(nn.LeNetConfig{W: 12, H: 12, Classes: 4, Quant: q, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Train(train, test, 1, 0.03); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 7d/7e: random Fourier features ----

func BenchmarkFig7dRFFTransform(b *testing.B) {
	t, err := rff.NewTransform(144, 512, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, 144)
	for i := range x {
		x[i] = float32(i) / 144
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Apply(x); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 7c/7f: FPGA design search ----

func BenchmarkFig7fFPGA(b *testing.B) {
	dev := fpga.StratixVGSD8()
	for _, bits := range []uint{32, 8} {
		b.Run(fmt.Sprintf("D%dM%d", bits, bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := fpga.Search(dev, bits, bits, 8192, bits != 32)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.GNPS, "fpga-GNPS")
			}
		})
	}
}

// ---- Ablations from DESIGN.md ----

func BenchmarkAblationLocking(b *testing.B) {
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 256, M: 512, P: kernels.I8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, sharing := range []core.Sharing{core.Racy, core.Locked} {
		b.Run(sharing.String(), func(b *testing.B) {
			cfg := core.Config{
				Problem: core.Logistic, D: kernels.I8, M: kernels.I8,
				Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
				Threads: 4, StepSize: 0.02, Epochs: 1,
				Sharing: sharing, Seed: 2,
			}
			b.SetBytes(int64(ds.Len() * ds.N))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TrainDense(cfg, ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationIndexPrecision(b *testing.B) {
	cost := simd.Haswell()
	for _, bits := range []uint{8, 16, 32} {
		b.Run(fmt.Sprintf("i%d", bits), func(b *testing.B) {
			q := kernels.MustQuantizer(kernels.I8, kernels.QShared, 8, 1)
			k := kernels.MustSparse(kernels.I8, kernels.I8, kernels.HandOpt, q, bits)
			for i := 0; i < b.N; i++ {
				s := k.StepStream(1 << 12)
				b.ReportMetric(s.Cycles(cost), "stream-cycles")
			}
		})
	}
}

func BenchmarkAblationRounding(b *testing.B) {
	// Host-level cost of the full AXPY under each rounding strategy.
	const n = 4096
	x := kernels.NewVec(kernels.I8, n)
	g := prng.NewXorshift32(1)
	for i := 0; i < n; i++ {
		x.SetRaw(i, int32(int8(g.Uint32())))
	}
	for _, kind := range []kernels.QuantKind{kernels.QBiased, kernels.QMersenne, kernels.QShared} {
		b.Run(kind.String(), func(b *testing.B) {
			q := kernels.MustQuantizer(kernels.I8, kind, 8, 1)
			k := kernels.MustDense(kernels.I8, kernels.I8, kernels.HandOpt, q)
			w := kernels.NewVec(kernels.I8, n)
			b.SetBytes(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Axpy(1e-3, x, w)
			}
		})
	}
}

func BenchmarkEngineSparseEpoch(b *testing.B) {
	ds, err := dataset.GenSparse(dataset.SparseConfig{
		N: 4096, M: 1024, Density: 0.03, P: kernels.I8, IdxBits: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Problem: core.Logistic, D: kernels.I8, M: kernels.I8,
		Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
		Threads: 2, StepSize: 0.05, Epochs: 1,
		Sharing: core.Racy, Seed: 2,
	}
	b.SetBytes(int64(ds.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrainSparse(cfg, ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCommQuantization(b *testing.B) {
	// The C-term engine's per-round quantized all-reduce.
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 256, M: 256, P: kernels.F32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, bits := range []uint{32, 8, 1} {
		b.Run(fmt.Sprintf("C%d", bits), func(b *testing.B) {
			cfg := core.SyncConfig{
				Problem: core.Logistic, CommBits: bits,
				Workers: 4, BatchPerWorker: 4, ErrorFeedback: bits < 32,
				StepSize: 0.1, Epochs: 1, Seed: 2,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TrainSyncDense(cfg, ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
