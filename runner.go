package buckwild

import (
	"fmt"
	"time"

	"buckwild/internal/obs"
	"buckwild/internal/run"
)

// This file is the facade over internal/run: supervised, fault-tolerant
// training runs with periodic checkpointing, automatic resume, bounded
// retries with exponential backoff, and deterministic fault injection.

// Fault-tolerance re-exports.
type (
	// FaultPlan is a deterministic fault-injection schedule; build one
	// with ParseFaultPlan or GenerateFaultPlan.
	FaultPlan = run.Plan
	// Fault is one scheduled fault inside a FaultPlan.
	Fault = run.Fault
	// Checkpoint is the durable state of a training run at an epoch
	// boundary, stored at the model's own precision.
	Checkpoint = run.Checkpoint
	// SupervisorStats counts what the supervisor did around the training
	// attempts of one run.
	SupervisorStats = obs.SupervisorStats
	// CheckpointInfo and RetryInfo are the LifecycleHooks payloads.
	CheckpointInfo = obs.CheckpointInfo
	RetryInfo      = obs.RetryInfo
	// LifecycleHooks is the optional extension of Hooks that receives
	// checkpoint and retry events from supervised runs.
	LifecycleHooks = obs.LifecycleHooks
	// RunReport is the outcome of a supervised run: the training result
	// (loss trajectory stitched across restarts), the supervisor's
	// counters, and the newest checkpoint path.
	RunReport = run.Report
)

// Sentinel causes of supervised-run failures, for errors.Is.
var (
	// ErrInjectedCrash is the cause of an injected worker crash.
	ErrInjectedCrash = run.ErrInjectedCrash
	// ErrStallDetected is the cause the stall watchdog cancels with.
	ErrStallDetected = run.ErrStallDetected
)

// ParseFaultPlan parses a comma-separated fault spec, e.g.
// "corrupt@ckpt=1,crash@step=1500" (see the -fault flag of
// cmd/buckwild). An empty spec returns a nil plan, which injects
// nothing.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	p, err := run.ParsePlan(spec)
	return p, wrapErr(err)
}

// GenerateFaultPlan derives a pseudo-random schedule of n crash and
// corrupt faults over maxStep model updates from a seed; the same seed
// always yields the same schedule.
func GenerateFaultPlan(seed uint64, n int, maxStep uint64) *FaultPlan {
	return run.GeneratePlan(seed, n, maxStep)
}

// RunConfig configures the supervisor around a training run. Zero
// values select conservative defaults; only CheckpointDir is required.
type RunConfig struct {
	// CheckpointDir is where checkpoints live; a run started over a
	// directory holding checkpoints from an earlier process resumes from
	// the newest valid one.
	CheckpointDir string
	// CheckpointEvery is the checkpoint period in epochs (default 1);
	// the final epoch is always checkpointed. KeepCheckpoints is how
	// many files to retain (default 2).
	CheckpointEvery int
	KeepCheckpoints int
	// MaxRetries bounds the retries after crashes or stalls (default 3;
	// negative disables retrying).
	MaxRetries int
	// Backoff is the first retry delay (default 50ms), doubling per
	// consecutive failure up to BackoffCap (default 5s).
	Backoff    time.Duration
	BackoffCap time.Duration
	// StallTimeout arms the stall watchdog; zero disables it unless the
	// fault plan injects stalls. DegradeAfter consecutive stall failures
	// degrade the run to one worker fewer, never below MinThreads.
	StallTimeout time.Duration
	DegradeAfter int
	MinThreads   int
	// Faults is the deterministic fault-injection schedule; nil injects
	// nothing.
	Faults *FaultPlan
	// Snapshotter, when non-nil, receives a promotable ModelSnapshot at
	// every checkpoint boundary (after the checkpoint file is durably on
	// disk) — the feed a serving daemon promotes hot models from. See
	// SnapshotPromoter for the adapter onto a ModelServer. Called on the
	// run's coordinating goroutine, so hand off expensive work.
	Snapshotter Snapshotter
}

func (rc RunConfig) internal(cfg Config) run.Config {
	var snap func(int, float64, []float32)
	if sn := rc.Snapshotter; sn != nil {
		sigText := cfg.Signature
		snap = func(epoch int, loss float64, w []float32) {
			sn.OnSnapshot(ModelSnapshot{Epoch: epoch, Loss: loss, Model: &Model{sigText: sigText, w: w}})
		}
	}
	return run.Config{
		Dir:          rc.CheckpointDir,
		Every:        rc.CheckpointEvery,
		Keep:         rc.KeepCheckpoints,
		MaxRetries:   rc.MaxRetries,
		Backoff:      rc.Backoff,
		BackoffCap:   rc.BackoffCap,
		StallTimeout: rc.StallTimeout,
		DegradeAfter: rc.DegradeAfter,
		MinThreads:   rc.MinThreads,
		Faults:       rc.Faults,
		Hooks:        cfg.Hooks,
		CollectStats: cfg.CollectStats,
		StepSample:   cfg.StepSample,
		NumHealth:    cfg.NumHealth,
		Tracer:       cfg.Tracer,
		Series:       cfg.TimeSeries,
		Logger:       obs.Component(cfg.Logger, "run"),
		Flight:       cfg.Flight,
		Bundle:       cfg.Bundle,
		Snapshot:     snap,
	}
}

// RunDense is the supervised counterpart of TrainDense: it checkpoints
// every CheckpointEvery epochs, resumes from the newest valid
// checkpoint after a crash or detected stall, retries with exponential
// backoff, and degrades the worker count after repeated stalls.
// Cancelling cfg.Context stops the run without retrying and leaves the
// newest checkpoint on disk for a later resume.
func RunDense(cfg Config, rc RunConfig, ds *DenseDataset) (*RunReport, error) {
	cc, err := cfg.coreConfig(false, 0)
	if err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("buckwild: empty dataset")
	}
	if ds.X[0].P != cc.D {
		return nil, fmt.Errorf("buckwild: dataset stored at %v but signature wants %v", ds.X[0].P, cc.D)
	}
	// The supervisor owns observation (it must see every step while
	// faults are armed), so the facade's Observer is not pre-installed.
	cc.Observer = nil
	rep, err := run.TrainDense(cfg.Context, rc.internal(cfg), cc, ds)
	return rep, wrapErr(err)
}

// RunSparse is the supervised counterpart of TrainSparse; see RunDense.
func RunSparse(cfg Config, rc RunConfig, ds *SparseDataset) (*RunReport, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("buckwild: empty dataset")
	}
	cc, err := cfg.coreConfig(true, ds.IdxBits)
	if err != nil {
		return nil, err
	}
	if ds.Val[0].P != cc.D {
		return nil, fmt.Errorf("buckwild: dataset stored at %v but signature wants %v", ds.Val[0].P, cc.D)
	}
	cc.Observer = nil
	rep, err := run.TrainSparse(cfg.Context, rc.internal(cfg), cc, ds)
	return rep, wrapErr(err)
}

// LoadLatestCheckpoint loads the newest valid checkpoint in dir,
// skipping corrupt or unreadable files (skipped reports how many). It
// returns (nil, "", 0, nil) when the directory holds no valid
// checkpoint.
func LoadLatestCheckpoint(dir string) (ck *Checkpoint, path string, skipped int, err error) {
	ck, path, skipped, err = run.LoadLatest(dir)
	return ck, path, skipped, wrapErr(err)
}
