package buckwild

import (
	"fmt"

	"buckwild/internal/cluster"
	"buckwild/internal/core"
	"buckwild/internal/obs"
)

// ClusterProtocol selects the simulated cluster's communication protocol.
// The zero value means ParameterServer.
type ClusterProtocol string

// The supported protocols.
const (
	// ParameterServer is an asynchronous parameter server: nodes push
	// wire-quantized gradients and pull model snapshots; the server
	// applies pushes as they arrive, optionally scaling each update's
	// step by its observed staleness (ClusterConfig.StalenessAlpha).
	ParameterServer ClusterProtocol = "param-server"
	// AllReduceProtocol is a double-buffered pipelined all-reduce: round
	// k trains while round k-1's reduction is in flight, so every update
	// lands exactly one round stale.
	AllReduceProtocol ClusterProtocol = "all-reduce"
)

// Valid reports whether p names a supported protocol.
func (p ClusterProtocol) Valid() bool {
	_, err := p.protocol()
	return err == nil
}

func (p ClusterProtocol) protocol() (cluster.Protocol, error) {
	switch p {
	case "", ParameterServer:
		return cluster.ParamServer, nil
	case AllReduceProtocol:
		return cluster.AllReduce, nil
	}
	return 0, fmt.Errorf("buckwild: unknown cluster protocol %q", string(p))
}

// ClusterStats is the simulated-interconnect snapshot surfaced on
// Result.Cluster after a multi-node run: exact wire-byte accounting
// (WireBytes == HeaderBytes + GradBytes + ModelBytes always holds), the
// simulated time split between compute and communication, and the
// per-update staleness histogram.
type ClusterStats = obs.ClusterStats

// ClusterConfig extends a training Config across a simulated multi-node
// cluster. The zero value means a single machine — Train behaves exactly
// as it always has; setting Nodes >= 2 routes dense training through the
// cluster tier instead (sparse datasets are not supported there).
//
// On the cluster, gradients cross the simulated interconnect quantized to
// WireBits — the DMGC communication term extended across a network — and
// every message's bytes are counted exactly into Result.Cluster.
type ClusterConfig struct {
	// Nodes is the simulated machine count; 0 and 1 both mean "no
	// cluster" (single-machine training, today's behavior).
	Nodes int
	// Protocol picks ParameterServer (default) or AllReduceProtocol.
	Protocol ClusterProtocol
	// WireBits is the gradient wire precision: 4, 8, 16 or 32. Zero
	// resolves from the signature's communication term when it has one
	// (e.g. "D32fM32fC8" puts 8-bit gradients on the wire), else 32.
	WireBits uint
	// ErrorFeedback carries each node's wire-quantization residual into
	// its next message (1-bit SGD's essential trick).
	ErrorFeedback bool
	// BatchPerNode is the examples a node processes per gradient message
	// (default 8).
	BatchPerNode int
	// StalenessAlpha enables staleness-compensated learning rates on the
	// parameter server: an update observed s model versions stale is
	// applied with step/(1+alpha*s). Zero disables compensation.
	StalenessAlpha float64
	// LatencySec, BandwidthBps and HeaderBytes model the interconnect:
	// every message costs Latency + bytes/Bandwidth simulated seconds and
	// carries HeaderBytes of framing. Zero values select a 10 GbE-class
	// default (50 µs, 1.25 GB/s, 16 bytes).
	LatencySec   float64
	BandwidthBps float64
	HeaderBytes  int
	// ComputeGNPS is the modeled per-node compute throughput in dataset
	// numbers per second (default 1e9).
	ComputeGNPS float64
	// LiveMetrics, when non-nil, receives per-node update counts, wire
	// bytes and staleness quantiles as the simulation runs, for scraping
	// mid-run (it is an http.Handler and a serve PromWriter). Nil costs
	// nothing.
	LiveMetrics *ClusterMetrics
	// TraceTIDBase offsets the cluster's trace track ids when a Tracer is
	// installed, so several cluster runs can share one trace file without
	// their per-node tracks colliding. Zero selects the default base
	// (1000).
	TraceTIDBase int
}

// enabled reports whether the config asks for multi-node training.
func (c ClusterConfig) enabled() bool { return c.Nodes >= 2 }

// Validate checks the cluster configuration; Config.Validate calls it, so
// bad cluster inputs fail fast with "buckwild:"-prefixed errors like
// every other configuration error.
func (c ClusterConfig) Validate() error {
	if c.Nodes < 0 {
		return fmt.Errorf("buckwild: negative cluster node count %d", c.Nodes)
	}
	if _, err := c.Protocol.protocol(); err != nil {
		return err
	}
	switch c.WireBits {
	case 0, 4, 8, 16, 32:
	default:
		return fmt.Errorf("buckwild: unsupported wire precision %d (use 4, 8, 16 or 32)", c.WireBits)
	}
	if c.BatchPerNode < 0 {
		return fmt.Errorf("buckwild: negative cluster batch size %d", c.BatchPerNode)
	}
	if c.StalenessAlpha < 0 {
		return fmt.Errorf("buckwild: negative staleness compensation %v", c.StalenessAlpha)
	}
	if c.LatencySec < 0 {
		return fmt.Errorf("buckwild: negative network latency %v", c.LatencySec)
	}
	if c.BandwidthBps < 0 {
		return fmt.Errorf("buckwild: negative network bandwidth %v", c.BandwidthBps)
	}
	if c.HeaderBytes < 0 {
		return fmt.Errorf("buckwild: negative header size %d", c.HeaderBytes)
	}
	if c.ComputeGNPS < 0 {
		return fmt.Errorf("buckwild: negative compute throughput %v", c.ComputeGNPS)
	}
	return nil
}

// wireBits resolves the effective wire precision against the signature's
// communication term.
func (c ClusterConfig) wireBits(sigText string) (uint, error) {
	if c.WireBits != 0 {
		return c.WireBits, nil
	}
	if sigText == "" {
		return 32, nil
	}
	sig, err := ParseSignature(sigText)
	if err != nil {
		return 0, wrapErr(err)
	}
	if !sig.C.Present || sig.C.Float || sig.C.Bits >= 32 {
		return 32, nil
	}
	switch sig.C.Bits {
	case 4, 8, 16:
		return sig.C.Bits, nil
	}
	return 0, fmt.Errorf("buckwild: signature communication precision %d not supported on the cluster wire (use 4, 8, 16 or 32)", sig.C.Bits)
}

// clusterConfig lowers the facade config onto the cluster tier. cc is the
// already-validated core config, reused for the resolved defaults and
// the assembled observer.
func (c Config) clusterConfig(cc core.Config) (cluster.Config, error) {
	proto, err := c.Cluster.Protocol.protocol()
	if err != nil {
		return cluster.Config{}, err
	}
	bits, err := c.Cluster.wireBits(c.Signature)
	if err != nil {
		return cluster.Config{}, err
	}
	return cluster.Config{
		Problem:        cc.Problem,
		Nodes:          c.Cluster.Nodes,
		Protocol:       proto,
		WireBits:       bits,
		Quant:          cc.Quant,
		ErrorFeedback:  c.Cluster.ErrorFeedback,
		BatchPerNode:   c.Cluster.BatchPerNode,
		StepSize:       cc.StepSize,
		StepDecay:      c.StepDecay,
		Epochs:         c.Epochs,
		Seed:           c.Seed,
		StalenessAlpha: c.Cluster.StalenessAlpha,
		ComputeGNPS:    c.Cluster.ComputeGNPS,
		Net: cluster.NetConfig{
			LatencySec:  c.Cluster.LatencySec,
			Bandwidth:   c.Cluster.BandwidthBps,
			HeaderBytes: c.Cluster.HeaderBytes,
		},
		Ctx:          c.Context,
		Observer:     cc.Observer,
		TraceTIDBase: c.Cluster.TraceTIDBase,
	}, nil
}
