// Kernel SVM via random Fourier features (the paper's Section 7 kernel-SVM
// evaluation): ten one-versus-all SVMs trained with Buckwild! SGD on a
// synthetic digit task, across precisions.
//
//	go run ./examples/svm_rff
package main

import (
	"fmt"
	"log"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/rff"
)

func main() {
	log.SetFlags(0)

	digits, err := dataset.GenDigits(dataset.DigitsConfig{
		W: 12, H: 12, Classes: 10, Train: 2000, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := digits.Split(0.8)

	run := func(name string, d, m kernels.Prec) {
		_, res, err := rff.Train(rff.Config{
			Features: 512,
			Train: core.Config{
				Problem: core.SVM,
				D:       d, M: m,
				Variant: kernels.HandOpt,
				Quant:   kernels.QShared, QuantPeriod: 8,
				Threads:  4,
				StepSize: 0.05,
				Epochs:   6,
				Sharing:  core.Racy,
				Seed:     5,
			},
			Seed: 5,
		}, train, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s train hinge loss %.4f, test error %.3f\n",
			name, res.TrainLoss[len(res.TrainLoss)-1], res.TestError)
	}

	fmt.Println("one-vs-all kernel SVM, 512 random Fourier features, 10 classes:")
	run("D32fM32f", kernels.F32, kernels.F32)
	run("D16M16", kernels.I16, kernels.I16)
	run("D8M8", kernels.I8, kernels.I8)
	fmt.Println("\n16-bit matches full precision and 8-bit lands within a percent,")
	fmt.Println("while the low-precision kernels process 2-4x fewer bytes per number")
	fmt.Println("(the paper measured 3.3x and 5.9x faster wall clock on its Xeon).")
}
