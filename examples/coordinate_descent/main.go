// Asynchronous coordinate descent: the paper's related-work family beyond
// SGD (Liu and Wright's AsySCD). Workers update random coordinates of a
// shared low-precision model without locking — the same DMGC machinery on a
// different optimizer.
//
//	go run ./examples/coordinate_descent
package main

import (
	"fmt"
	"log"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/scd"
)

func main() {
	log.SetFlags(0)

	ds, err := dataset.GenDense(dataset.DenseConfig{
		N: 64, M: 600, P: kernels.F32, Regression: true, Seed: 81,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, m kernels.Prec, threads int, scale float32) {
		res, err := scd.Train(scd.Config{
			M:           m,
			Quant:       kernels.QShared,
			QuantPeriod: 8,
			Threads:     threads,
			Lambda:      0.01,
			Passes:      10,
			StepScale:   scale,
			Seed:        4,
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s objective %.5f -> %.5f\n",
			name, res.Objective[0], res.Objective[len(res.Objective)-1])
	}

	fmt.Println("ridge regression by coordinate descent:")
	run("M32f, sequential", kernels.F32, 1, 1)
	run("M32f, 4 racy workers", kernels.F32, 4, 0.8)
	run("M16,  4 racy workers", kernels.I16, 4, 0.8)
	run("M8,   4 racy workers", kernels.I8, 4, 0.8)
	fmt.Println("\nasynchronous coordinate updates tolerate both staleness and")
	fmt.Println("low-precision rounded writes, just like Hogwild!/Buckwild! SGD.")
}
