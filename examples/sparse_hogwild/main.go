// Sparse Hogwild!: the workload asynchronous SGD was designed for. Trains
// 8-bit sparse logistic regression with lock-free workers and compares
// against the locked baseline that Hogwild! famously outruns, plus the
// index-precision ablation from Section 3 of the paper.
//
//	go run ./examples/sparse_hogwild
package main

import (
	"fmt"
	"log"

	"buckwild"
)

func main() {
	log.SetFlags(0)

	const (
		n       = 4096
		m       = 20000
		density = 0.03 // the paper's sparse density
	)

	fmt.Println("-- lock-free vs locked (D8i16M8, 4 workers) --")
	ds, err := buckwild.GenerateSparse("D8i16M8", n, m, density, 11)
	if err != nil {
		log.Fatal(err)
	}
	for _, locked := range []bool{false, true} {
		res, err := buckwild.Train(buckwild.Config{
			Signature: "D8i16M8",
			Threads:   4,
			Locked:    locked,
			Epochs:    6,
			StepSize:  0.05,
			Seed:      3,
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		mode := "lock-free (Hogwild!)"
		if locked {
			mode = "locked baseline"
		}
		fmt.Printf("%-22s final loss %.4f, %5.1f M numbers/s on this host\n",
			mode, res.TrainLoss[len(res.TrainLoss)-1], res.NumbersPerSec/1e6)
	}
	fmt.Println("\nboth reach the same quality; on real hardware the lock-free version is")
	fmt.Println("an order of magnitude faster (our Go host shows a smaller gap because")
	fmt.Println("the kernels are emulated portably).")

	fmt.Println("\n-- index precision (Section 3): bytes per nonzero --")
	for _, sig := range []string{"D8i8M8", "D8i16M8", "D8i32M8"} {
		parsed, err := buckwild.ParseSignature(sig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %.2f bytes per processed number\n", sig, parsed.BytesPerElement())
	}
	fmt.Println("\nnarrow indices cut dataset bandwidth with zero statistical cost,")
	fmt.Println("because they do not change the semantics of the input.")
}
