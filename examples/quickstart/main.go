// Quickstart: train 8-bit asynchronous SGD (Buckwild!) on a synthetic
// logistic-regression problem and compare it with the full-precision
// baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"buckwild"
)

func main() {
	log.SetFlags(0)

	// A dense logistic-regression dataset from the paper's generative
	// model, quantized to 8 bits (the D8 in D8M8).
	const n, m = 256, 8000
	ds8, err := buckwild.GenerateDense("D8M8", n, m, 42)
	if err != nil {
		log.Fatal(err)
	}
	ds32, err := buckwild.GenerateDense("D32fM32f", n, m, 42)
	if err != nil {
		log.Fatal(err)
	}

	train := func(sig string, ds *buckwild.DenseDataset) *buckwild.Result {
		res, err := buckwild.Train(buckwild.Config{
			Signature: sig,
			Threads:   4, // lock-free asynchronous workers
			Epochs:    8,
			StepSize:  0.02,
			Seed:      7,
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	low := train("D8M8", ds8)
	full := train("D32fM32f", ds32)

	fmt.Println("epoch   D8M8 loss   D32fM32f loss")
	for e := range low.TrainLoss {
		fmt.Printf("%-8d%-12.4f%-12.4f\n", e, low.TrainLoss[e], full.TrainLoss[e])
	}

	// The hardware-efficiency story: what the paper's performance model
	// says each configuration sustains on the reference 18-core Xeon.
	for _, sig := range []string{"D8M8", "D16M16", "D32fM32f"} {
		parsed, err := buckwild.ParseSignature(sig)
		if err != nil {
			log.Fatal(err)
		}
		gnps, err := buckwild.PredictThroughput(parsed, n, 18)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s predicted throughput at 18 threads: %.2f GNPS\n", sig, gnps)
	}
	fmt.Println("\n8-bit training tracks full precision while processing 4x fewer bytes per number.")
}
