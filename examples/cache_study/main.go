// Cache study: drives the simulated 18-core machine (MESI hierarchy with
// the paper's Xeon geometry) through the Section 5.3/5.4/6.2 optimizations
// for a small, communication-bound model: disabling the prefetcher,
// mini-batching, and the obstinate cache.
//
//	go run ./examples/cache_study
package main

import (
	"fmt"
	"log"

	"buckwild/internal/kernels"
	"buckwild/internal/machine"
)

func main() {
	log.SetFlags(0)

	mc := machine.Xeon()
	base := machine.Workload{
		D: kernels.I8, M: kernels.I8,
		Variant: kernels.HandOpt,
		Quant:   kernels.QShared, QuantPeriod: 8,
		ModelSize: 1 << 10, // a small model: deep in the communication-bound regime
		Threads:   18,
		Prefetch:  true,
		Seed:      1,
	}

	run := func(name string, mod func(*machine.Workload)) float64 {
		w := base
		mod(&w)
		r, err := machine.Simulate(mc, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %7.2f GNPS  (bound: %s, stale reads: %d)\n",
			name, r.GNPS, r.Bound, r.Stats.StaleReads)
		return r.GNPS
	}

	fmt.Printf("D8M8, n=%d, 18 threads on the simulated Xeon:\n\n", base.ModelSize)
	baseline := run("baseline (prefetch on, q=0, B=1)", func(*machine.Workload) {})
	run("prefetcher disabled (Section 5.3)", func(w *machine.Workload) { w.Prefetch = false })
	run("mini-batch B=16 (Section 5.4)", func(w *machine.Workload) { w.MiniBatch = 16 })
	run("obstinate cache q=0.5 (Section 6.2)", func(w *machine.Workload) { w.Obstinacy = 0.5 })
	run("obstinate cache q=0.95", func(w *machine.Workload) { w.Obstinacy = 0.95 })
	big := run("large model (n=2^20) for reference", func(w *machine.Workload) { w.ModelSize = 1 << 20 })

	fmt.Printf("\nthe small model runs %.1fx below the bandwidth-bound plateau;\n", big/baseline)
	fmt.Println("each optimization recovers part of that gap, exactly as in the paper's")
	fmt.Println("Figures 6a, 6c and 6d.")
}
