// Deep learning at low precision (the paper's Section 7 CNN evaluation):
// trains a LeNet-style network on a synthetic digit task while simulating
// fixed-point arithmetic of several bit widths, with biased and unbiased
// weight rounding — the reproduction of Figure 7b's surprising result that
// training remains accurate below 8 bits when rounding is unbiased.
//
//	go run ./examples/deep_learning
package main

import (
	"fmt"
	"log"

	"buckwild/internal/dataset"
	"buckwild/internal/fixed"
	"buckwild/internal/nn"
)

func main() {
	log.SetFlags(0)

	digits, err := dataset.GenDigits(dataset.DigitsConfig{
		W: 12, H: 12, Classes: 10, Train: 2000, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := digits.Split(0.8)

	run := func(bits uint, rounding fixed.Rounding) {
		var q nn.QuantSpec
		if bits == 32 {
			q = nn.FullPrecision()
		} else {
			q, err = nn.NewQuantSpec(bits, bits, rounding, 9)
			if err != nil {
				log.Fatal(err)
			}
		}
		net, err := nn.NewLeNet(nn.LeNetConfig{
			W: 12, H: 12, Classes: 10, Quant: q, Seed: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := net.Train(train, test, 6, 0.03)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d-bit %-9s final train loss %.4f, test error %.3f\n",
			bits, rounding, res.EpochLoss[len(res.EpochLoss)-1], res.TestError)
	}

	fmt.Println("LeNet-style CNN, weights and activations quantized per the DMGC model:")
	run(32, fixed.Unbiased)
	run(16, fixed.Unbiased)
	run(8, fixed.Unbiased)
	run(8, fixed.Biased)
	run(6, fixed.Unbiased)
	run(6, fixed.Biased)
	fmt.Println("\nunbiased rounding keeps sub-8-bit training accurate; biased rounding")
	fmt.Println("collapses it — the paper's Figure 7b.")
}
