// One-bit SGD: the explicit-communication corner of the DMGC space. Runs
// synchronous data-parallel SGD with gradients quantized to a single bit
// per value plus the carried-forward error of Seide et al. — the system
// Table 1 classifies as C1s — and shows why the error feedback is the part
// that makes it work.
//
//	go run ./examples/one_bit_sgd
package main

import (
	"fmt"
	"log"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
)

func main() {
	log.SetFlags(0)

	ds, err := dataset.GenDense(dataset.DenseConfig{
		N: 128, M: 4096, P: kernels.F32, Seed: 61,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, bits uint, ef bool) {
		res, err := core.TrainSyncDense(core.SyncConfig{
			Problem:        core.Logistic,
			CommBits:       bits,
			Workers:        8,
			BatchPerWorker: 4,
			ErrorFeedback:  ef,
			StepSize:       0.1,
			Epochs:         8,
			Seed:           2,
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s loss %.4f -> %.4f over %d rounds\n",
			name, res.TrainLoss[0], res.TrainLoss[len(res.TrainLoss)-1], res.Steps)
	}

	fmt.Println("synchronous data-parallel logistic regression, 8 workers:")
	run("C32 (full-precision comm)", 32, false)
	run("C8 + error feedback", 8, true)
	run("C1s + error feedback", 1, true)
	run("C1s without error feedback", 1, false)
	fmt.Println("\none bit per gradient value suffices — but only because the")
	fmt.Println("full-precision quantization error is carried into the next round,")
	fmt.Println("which is why Table 1 classifies the system as C1s rather than G1.")
}
