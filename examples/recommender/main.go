// Recommender: low-rank matrix factorization trained with asynchronous
// low-precision SGD. Recommender systems are one of the Hogwild! domains
// the paper cites, and their star-rating inputs are "naturally quantized"
// (Section 3), so the low-precision dataset representation is exact.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"

	"buckwild/internal/kernels"
	"buckwild/internal/mf"
)

func main() {
	log.SetFlags(0)

	data, err := mf.Generate(mf.GenConfig{
		Users: 200, Items: 150, Rank: 6, Observed: 30000, Levels: 5, Seed: 71,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, m kernels.Prec, threads int) {
		_, res, err := mf.Train(mf.Config{
			Rank:        12,
			M:           m,
			Quant:       kernels.QShared,
			QuantPeriod: 8,
			Threads:     threads,
			StepSize:    0.05,
			Lambda:      0.01,
			Epochs:      12,
			Seed:        9,
		}, data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s RMSE %.4f -> %.4f\n",
			name, res.RMSE[0], res.RMSE[len(res.RMSE)-1])
	}

	fmt.Printf("factorizing %d ratings of a %dx%d matrix (5 star levels):\n",
		data.Len(), data.Users, data.Items)
	run("M32f, 1 worker", kernels.F32, 1)
	run("M16, 4 workers (racy)", kernels.I16, 4)
	run("M8,  4 workers (racy)", kernels.I8, 4)
	fmt.Println("\nthe factor matrices are DMGC model numbers: every write is rounded")
	fmt.Println("to the model precision, and lock-free workers collide rarely because")
	fmt.Println("each update touches only two rank-length rows.")
}
