package main

// Example pins the example's output: the run is Sequential with fixed
// seeds, so the telemetry it prints is fully deterministic. (The pinned
// loss moves only when the rounding stream changes shape, as it did when
// xorshift draws were batched 8 lanes per 64-bit word — see DESIGN §10.)
func Example() {
	telemetry()
	// Output:
	// hooks saw 12 epochs (2 classes x 6 epochs)
	// time-series: 3 windows (budget 4, 4 epochs each), 2880 steps total
	// final window: 960 steps, loss 0.0247, max staleness 0
	// loss improved: true
	// trace: 14 spans recorded
}
