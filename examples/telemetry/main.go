// Training telemetry on a tiny RFF problem: run-level hooks, a
// fixed-budget time-series, and trace spans, all enabled through the
// engine's Observer. The run is Sequential with fixed seeds, so every
// printed number is deterministic (main_test.go pins the output).
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
	"buckwild/internal/rff"
)

// epochCounter counts OnEpoch callbacks; the other hooks are no-ops.
type epochCounter struct {
	obs.NopHooks
	epochs atomic.Uint64
}

func (h *epochCounter) OnEpoch(obs.EpochInfo) { h.epochs.Add(1) }

func main() { telemetry() }

func telemetry() {
	log.SetFlags(0)
	digits, err := dataset.GenDigits(dataset.DigitsConfig{
		W: 8, H: 8, Classes: 2, Train: 300, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := digits.Split(0.8)

	const epochs = 6
	hooks := &epochCounter{}
	series := obs.NewSeries(4)   // tiny budget, so downsampling shows
	tracer := obs.NewTracer(128) // coarse spans: one per training + epoch
	_, res, err := rff.Train(rff.Config{
		Features: 64,
		Train: core.Config{
			D: kernels.I8, M: kernels.I8,
			Variant: kernels.HandOpt,
			Quant:   kernels.QShared, QuantPeriod: 8,
			Threads:  1,
			StepSize: 0.05,
			Epochs:   epochs,
			Sharing:  core.Sequential,
			Seed:     5,
			Observer: &obs.Observer{
				Hooks:      hooks,
				StepSample: 1,
				Series:     series,
				Tracer:     tracer,
			},
		},
		Seed: 5,
	}, train, test)
	if err != nil {
		log.Fatal(err)
	}

	// One one-vs-all SVM per class shares the observer, so the hooks and
	// series cover both trainings back to back.
	fmt.Printf("hooks saw %d epochs (%d classes x %d epochs)\n",
		hooks.epochs.Load(), digits.C, epochs)

	sn := series.Snapshot()
	var steps uint64
	for _, w := range sn.Windows {
		steps += w.Steps
	}
	fmt.Printf("time-series: %d windows (budget %d, %d epochs each), %d steps total\n",
		len(sn.Windows), sn.Budget, sn.EpochsPerWindow, steps)
	final := sn.Final()
	fmt.Printf("final window: %d steps, loss %.4f, max staleness %d\n",
		final.Steps, final.Loss, final.Staleness.Max)
	fmt.Println("loss improved:", res.TrainLoss[epochs] < res.TrainLoss[0])
	fmt.Printf("trace: %d spans recorded\n", tracer.SpanCount())
}
